"""Tests for the discrete-event simulator, queues, links and paths."""

import numpy as np
import pytest

from repro.core import LTE_PROFILE, NR_PROFILE
from repro.net import (
    CrossTraffic,
    DropTailQueue,
    Link,
    Packet,
    PathConfig,
    Simulator,
    build_cellular_path,
)
from repro.net.link import DelayProcess


class TestSimulator:
    def test_events_run_in_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, order.append, "b")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(3.0, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_fifo(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, order.append, 1)
        sim.schedule(1.0, order.append, 2)
        sim.run()
        assert order == [1, 2]

    def test_cancel(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(5.0, fired.append, "late")
        sim.run(until=2.0)
        assert fired == ["early"]
        assert sim.now == 2.0
        sim.run()
        assert fired == ["early", "late"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at(self):
        sim = Simulator()
        times = []
        sim.schedule_at(3.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [3.5]

    def test_nested_scheduling(self):
        sim = Simulator()
        times = []

        def outer():
            times.append(sim.now)
            sim.schedule(1.0, inner)

        def inner():
            times.append(sim.now)

        sim.schedule(1.0, outer)
        sim.run()
        assert times == [1.0, 2.0]

    def test_run_until_advances_time_when_idle(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_schedule_at_exactly_now_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: sim.schedule_at(sim.now, fired.append, "x"))
        sim.run()
        assert fired == ["x"]
        assert sim.now == 1.0

    def test_schedule_at_float_rounded_past_clamped(self):
        # now + dt computed elsewhere can land a few ULPs below now; that
        # must fire immediately instead of crashing mid-simulation.
        sim = Simulator()
        fired = []

        def at_t():
            sim.schedule_at(sim.now - 1e-12, fired.append, "x")

        sim.schedule(0.3, at_t)
        sim.run()
        assert fired == ["x"]

    def test_schedule_at_genuinely_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_event_counters(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        sim.run()
        assert sim.events_scheduled == 2
        assert sim.events_executed == 1
        assert sim.events_cancelled == 1
        assert sim.counters() == (2, 1, 1)
        assert not keep.cancelled

    def test_pending_events_tracks_schedule_cancel_and_run(self):
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
        assert sim.pending_events() == 5
        events[0].cancel()
        events[0].cancel()  # double-cancel must not double-count
        assert sim.pending_events() == 4
        assert sim.events_cancelled == 1
        sim.run(until=3.0)
        assert sim.pending_events() == 2
        sim.run()
        assert sim.pending_events() == 0

    def test_cancel_after_fire_does_not_skew_counters(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        event.cancel()
        assert sim.pending_events() == 0
        assert sim.events_cancelled == 0

    def test_global_counters_aggregate_across_simulators(self):
        from repro.net.sim import global_counters

        before = global_counters()
        for _ in range(3):
            sim = Simulator()
            sim.schedule(1.0, lambda: None)
            sim.schedule(2.0, lambda: None).cancel()
            sim.run()
        after = global_counters()
        assert after.scheduled - before.scheduled == 6
        assert after.executed - before.executed == 3
        assert after.cancelled - before.cancelled == 3

    def test_cancel_during_dispatch_skips_pending_event(self):
        # A callback may cancel an event that is still in the heap; the
        # loop must drop it without executing and keep counters honest.
        sim = Simulator()
        fired = []
        victim = sim.schedule(2.0, fired.append, "victim")
        sim.schedule(1.0, victim.cancel)
        sim.run()
        assert fired == []
        assert sim.counters() == (2, 1, 1)
        assert sim.pending_events() == 0

    def test_cancel_during_dispatch_same_timestamp(self):
        # FIFO ties mean the canceller runs first even at equal times,
        # exercising the popped-but-cancelled continue path.
        sim = Simulator()
        fired = []
        canceller_holder = []
        sim.schedule(1.0, lambda: canceller_holder[0].cancel())
        canceller_holder.append(sim.schedule(1.0, fired.append, "x"))
        sim.run()
        assert fired == []
        assert sim.counters() == (2, 1, 1)
        assert sim.now == 1.0

    def test_event_exactly_at_until_fires(self):
        # run(until=t) is inclusive: an event at exactly t executes and
        # the clock rests at t with nothing left over.
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "edge")
        sim.schedule(2.0 + 1e-9, fired.append, "past")
        sim.run(until=2.0)
        assert fired == ["edge"]
        assert sim.now == 2.0
        assert sim.pending_events() == 1
        sim.run()
        assert fired == ["edge", "past"]

    def test_counters_consistent_after_early_heap_drain(self):
        # The heap empties long before `until`; the clock must still
        # jump to `until` and the simulator stays usable afterwards.
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "only")
        sim.run(until=10.0)
        assert fired == ["only"]
        assert sim.now == 10.0
        assert sim.pending_events() == 0
        assert sim.counters() == (1, 1, 0)
        sim.schedule(5.0, fired.append, "later")
        sim.run()
        assert fired == ["only", "later"]
        assert sim.now == 15.0
        assert sim.counters() == (2, 2, 0)


class TestSimulatorTracing:
    def test_default_tracer_is_null(self):
        from repro.trace import NULL_TRACER

        assert Simulator().tracer is NULL_TRACER
        assert not Simulator().tracer.enabled

    def test_traced_run_records_dispatch_spans_and_queue_depth(self):
        from repro.trace import Tracer, tracing

        with tracing(Tracer()) as tracer:
            sim = Simulator()
            order = []
            sim.schedule(1.0, order.append, "a")
            sim.schedule(2.0, order.append, "b")
            sim.run()
        assert order == ["a", "b"]
        spans = tracer.spans(name="sim.dispatch")
        assert [s.begin_s for s in spans] == [1.0, 2.0]
        assert all(dict(s.args)["callback"] == "list.append" for s in spans)
        depths = tracer.counter_series("sim.queue_depth")
        assert depths == [(1.0, 1.0), (2.0, 0.0)]

    def test_traced_and_untraced_runs_agree(self):
        from repro.trace import Tracer, tracing

        def drive(sim):
            out = []
            sim.schedule(1.0, out.append, "x")
            sim.schedule(2.0, out.append, "y")
            sim.schedule(3.0, out.append, "z")
            sim.schedule(1.5, out.append, "w")
            sim.run(until=2.5)
            sim.run()
            return out, sim.now, sim.counters()

        plain = drive(Simulator())
        with tracing(Tracer()):
            traced = drive(Simulator())
        assert plain == traced


class TestDropTailQueue:
    def test_fifo(self):
        q = DropTailQueue(10)
        p1 = Packet(1, "data", 100)
        p2 = Packet(1, "data", 100)
        q.push(p1)
        q.push(p2)
        assert q.pop() is p1
        assert q.pop() is p2
        assert q.pop() is None

    def test_overflow_drops(self):
        q = DropTailQueue(2)
        assert q.push(Packet(1, "data", 100))
        assert q.push(Packet(1, "data", 100))
        assert not q.push(Packet(1, "data", 100))
        assert q.drops == 1
        assert len(q) == 2

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            DropTailQueue(0)


class TestLink:
    def test_delivery_latency(self):
        sim = Simulator()
        link = Link(sim, rate_bps=8000.0, delay_s=0.5)
        arrivals = []
        link.connect(lambda p: arrivals.append(sim.now))
        link.send(Packet(1, "data", 100))  # 100 B at 1 kB/s = 0.1 s + 0.5 s
        sim.run()
        assert arrivals == [pytest.approx(0.6)]

    def test_serialization_queueing(self):
        sim = Simulator()
        link = Link(sim, rate_bps=8000.0, delay_s=0.0)
        arrivals = []
        link.connect(lambda p: arrivals.append(sim.now))
        link.send(Packet(1, "data", 100))
        link.send(Packet(1, "data", 100))
        sim.run()
        assert arrivals == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_pause_resume(self):
        sim = Simulator()
        link = Link(sim, rate_bps=8e6, delay_s=0.0)
        arrivals = []
        link.connect(lambda p: arrivals.append(sim.now))
        link.pause()
        link.send(Packet(1, "data", 1000))
        sim.run(until=1.0)
        assert arrivals == []
        link.resume()
        sim.run(until=2.0)
        assert len(arrivals) == 1

    def test_queue_overflow_records_drop(self):
        sim = Simulator()
        link = Link(sim, rate_bps=800.0, delay_s=0.0, queue_capacity_packets=1)
        link.connect(lambda p: None)
        for _ in range(5):
            link.send(Packet(1, "data", 100))
        assert link.queue.drops >= 3
        assert len(link.dropped_packets) == link.queue.drops

    def test_unconnected_link_raises(self):
        sim = Simulator()
        link = Link(sim, rate_bps=1e6, delay_s=0.0)
        with pytest.raises(RuntimeError):
            link.send(Packet(1, "data", 100))

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Link(Simulator(), rate_bps=0.0, delay_s=0.0)

    def test_fifo_preserved_under_delay_process(self):
        sim = Simulator()
        dp = DelayProcess(np.random.default_rng(0), max_extra_s=0.05, redraw_interval_s=0.01)
        link = Link(sim, rate_bps=8e6, delay_s=0.001, delay_process=dp)
        seqs = []
        link.connect(lambda p: seqs.append(p.seq))

        def send(i):
            link.send(Packet(1, "data", 1000, seq=i))

        for i in range(200):
            sim.schedule(i * 0.002, send, i)
        sim.run()
        assert seqs == sorted(seqs)


class TestCrossTraffic:
    def test_mean_load(self):
        ct = CrossTraffic(np.random.default_rng(0), 0.8, 0.01, 0.03)
        assert ct.mean_load == pytest.approx(0.2)

    def test_load_alternates(self):
        ct = CrossTraffic(np.random.default_rng(1), 0.9, 0.01, 0.01)
        loads = {ct.load_at(t / 100.0) for t in range(200)}
        assert loads == {0.0, 0.9}

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            CrossTraffic(np.random.default_rng(0), 1.5)


class TestPathConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            PathConfig(profile=NR_PROFILE, direction="sideways")
        with pytest.raises(ValueError):
            PathConfig(profile=NR_PROFILE, scale=0.0)
        with pytest.raises(ValueError):
            PathConfig(profile=NR_PROFILE, time_of_day="noon")

    def test_access_rate_matches_baselines(self):
        # Daytime 5G ~900 Mbps; 4G day ~125 Mbps (Sec. 4.1).
        rate5 = PathConfig(profile=NR_PROFILE, with_scheduling_stalls=False).access_rate_bps()
        rate4 = PathConfig(profile=LTE_PROFILE, with_scheduling_stalls=False).access_rate_bps()
        assert rate5 / 1e6 == pytest.approx(864, rel=0.05)
        assert rate4 / 1e6 == pytest.approx(125, rel=0.05)
        assert 4.0 <= rate5 / rate4 <= 8.0

    def test_night_4g_recovers(self):
        day = PathConfig(profile=LTE_PROFILE, time_of_day="day").access_rate_bps()
        night = PathConfig(profile=LTE_PROFILE, time_of_day="night").access_rate_bps()
        assert night > 1.4 * day


class TestBuiltPath:
    def test_base_rtt_5g_lower_than_4g(self):
        cfg5 = PathConfig(profile=NR_PROFILE, scale=0.05)
        cfg4 = PathConfig(profile=LTE_PROFILE, scale=0.05)
        p5 = build_cellular_path(Simulator(), cfg5, np.random.default_rng(0))
        p4 = build_cellular_path(Simulator(), cfg4, np.random.default_rng(0))
        # The 4G EPC detour adds ~20 ms RTT (Fig. 14).
        assert p4.base_rtt_s - p5.base_rtt_s == pytest.approx(0.020, abs=0.004)

    def test_rtt_grows_with_distance(self):
        near = build_cellular_path(
            Simulator(), PathConfig(profile=NR_PROFILE, server_distance_km=10),
            np.random.default_rng(0),
        )
        far = build_cellular_path(
            Simulator(), PathConfig(profile=NR_PROFILE, server_distance_km=2500),
            np.random.default_rng(0),
        )
        assert far.base_rtt_s > near.base_rtt_s + 0.030

    def test_forward_delivery(self):
        sim = Simulator()
        path = build_cellular_path(sim, PathConfig(profile=NR_PROFILE, scale=0.05), np.random.default_rng(0))
        got = []
        path.on_forward_delivery(got.append)
        path.send_forward(Packet(1, "data", 1500))
        sim.run(until=1.0)
        assert len(got) == 1

    def test_reverse_delivery(self):
        sim = Simulator()
        path = build_cellular_path(sim, PathConfig(profile=NR_PROFILE, scale=0.05), np.random.default_rng(0))
        got = []
        path.on_reverse_delivery(got.append)
        path.send_reverse(Packet(1, "ack", 60))
        sim.run(until=1.0)
        assert len(got) == 1

    def test_outage_blocks_access(self):
        sim = Simulator()
        path = build_cellular_path(
            sim,
            PathConfig(profile=NR_PROFILE, scale=0.05, with_scheduling_stalls=False),
            np.random.default_rng(0),
        )
        arrivals = []
        path.on_forward_delivery(lambda p: arrivals.append(sim.now))
        path.schedule_access_outage(0.0, 0.5)
        path.send_forward(Packet(1, "data", 1500))
        sim.run(until=0.4)
        assert arrivals == []
        sim.run(until=1.0)
        assert len(arrivals) == 1
        assert arrivals[0] >= 0.5

    def test_hop_rtts_monotone(self):
        path = build_cellular_path(
            Simulator(), PathConfig(profile=NR_PROFILE), np.random.default_rng(0)
        )
        rtts = path.hop_rtts_s(np.random.default_rng(0))
        assert len(rtts) == 3
        assert rtts == sorted(rtts)

    def test_wired_buffer_ratio_matches_tab3(self):
        # 5G paths hold ~2.5x the wired buffer of 4G paths (Tab. 3).
        p5 = build_cellular_path(
            Simulator(), PathConfig(profile=NR_PROFILE), np.random.default_rng(0)
        )
        p4 = build_cellular_path(
            Simulator(), PathConfig(profile=LTE_PROFILE), np.random.default_rng(0)
        )
        ratio = p5.wired_link.queue.capacity_packets / p4.wired_link.queue.capacity_packets
        assert 2.0 <= ratio <= 3.0
