"""Tests for the transport layer: TCP machinery, CC algorithms, UDP."""

import numpy as np
import pytest

from repro.core import NR_PROFILE
from repro.net import PathConfig, Simulator, build_cellular_path
from repro.transport import (
    CC_ALGORITHMS,
    Bbr,
    Cubic,
    Reno,
    TcpConnection,
    UdpSender,
    UdpSink,
    Vegas,
    Veno,
    loss_runs,
    make_cc,
    run_tcp,
    run_udp,
)

MSS = 1448


def quiet_config(**overrides):
    """A clean path: no cross traffic or stalls, fast to simulate."""
    defaults = dict(
        profile=NR_PROFILE,
        scale=0.02,
        with_cross_traffic=False,
        with_scheduling_stalls=False,
    )
    defaults.update(overrides)
    return PathConfig(**defaults)


class TestCcAlgorithms:
    def test_registry_complete(self):
        assert set(CC_ALGORITHMS) == {"reno", "cubic", "vegas", "veno", "bbr"}

    def test_make_cc_unknown(self):
        with pytest.raises(ValueError):
            make_cc("turbo", MSS)

    def test_make_cc_sets_rate_scale(self):
        cc = make_cc("reno", MSS, rate_scale=0.1)
        assert cc.rate_scale == 0.1

    def test_reno_slow_start_doubles(self):
        cc = Reno(MSS)
        start = cc.cwnd_bytes
        cc.on_ack(start, 0.02, 0.0)
        assert cc.cwnd_bytes == pytest.approx(2 * start)

    def test_reno_halves_on_loss(self):
        cc = Reno(MSS)
        cc.cwnd_bytes = 100 * MSS
        cc.on_loss(1.0)
        assert cc.cwnd_bytes == pytest.approx(50 * MSS)
        assert not cc.in_slow_start

    def test_reno_congestion_avoidance_linear(self):
        cc = Reno(MSS, rate_scale=1.0)
        cc.cwnd_bytes = 10 * MSS
        cc.ssthresh_bytes = 5 * MSS  # force CA
        cc.on_ack(10 * MSS, 0.02, 0.0)  # one full window acked
        assert cc.cwnd_bytes == pytest.approx(11 * MSS, rel=0.01)

    def test_timeout_collapses_window(self):
        cc = Reno(MSS)
        cc.cwnd_bytes = 100 * MSS
        cc.on_timeout(1.0)
        assert cc.cwnd_bytes == MSS
        assert cc.ssthresh_bytes == pytest.approx(50 * MSS)

    def test_cubic_decrease_factor(self):
        cc = Cubic(MSS)
        cc.cwnd_bytes = 100 * MSS
        cc.ssthresh_bytes = 1.0  # out of slow start
        cc.on_loss(1.0)
        assert cc.cwnd_bytes == pytest.approx(70 * MSS)

    def test_cubic_regrows_toward_wmax(self):
        cc = Cubic(MSS, rate_scale=1.0)
        cc.cwnd_bytes = 100 * MSS
        cc.ssthresh_bytes = 1.0
        cc.on_loss(0.0)
        before = cc.cwnd_bytes
        for i in range(200):
            cc.on_ack(MSS, 0.02, 0.01 * (i + 1))
        assert cc.cwnd_bytes > before

    def test_vegas_decreases_on_inflated_rtt(self):
        cc = Vegas(MSS, rate_scale=1.0)
        cc.ssthresh_bytes = 1.0
        cc.cwnd_bytes = 50 * MSS
        cc.on_ack(MSS, 0.020, 0.1)  # establishes base RTT
        before = cc.cwnd_bytes
        t = 0.2
        for _ in range(30):  # persistent 2x RTT: heavy queueing signal
            cc.on_ack(MSS, 0.040, t)
            t += 0.05
        assert cc.cwnd_bytes < before

    def test_vegas_increases_when_no_queueing(self):
        cc = Vegas(MSS, rate_scale=1.0)
        cc.ssthresh_bytes = 1.0
        cc.cwnd_bytes = 10 * MSS
        t = 0.1
        before = cc.cwnd_bytes
        for _ in range(10):
            cc.on_ack(MSS, 0.020, t)
            t += 0.05
        assert cc.cwnd_bytes > before

    def test_veno_random_loss_gentler(self):
        congested = Veno(MSS)
        random_loss = Veno(MSS)
        for cc, rtt in ((congested, 0.08), (random_loss, 0.0201)):
            cc.ssthresh_bytes = 1.0
            cc.cwnd_bytes = 100 * MSS
            cc.on_ack(MSS, 0.02, 0.0)  # base rtt
            cc.on_ack(MSS, rtt, 0.1)
        congested.on_loss(1.0)
        random_loss.on_loss(1.0)
        assert random_loss.cwnd_bytes > congested.cwnd_bytes

    def test_bbr_paces(self):
        cc = Bbr(MSS)
        assert cc.pacing_rate_bps is not None
        assert cc.pacing_rate_bps > 0

    def test_bbr_tracks_delivery_rate(self):
        cc = Bbr(MSS)
        cc.on_ack(MSS, 0.02, 0.1, delivery_rate_bps=50e6)
        assert cc.bottleneck_bw_bps == pytest.approx(50e6)

    def test_bbr_ignores_loss(self):
        cc = Bbr(MSS)
        cc.on_ack(MSS, 0.02, 0.1, delivery_rate_bps=50e6)
        cwnd = cc.cwnd_bytes
        cc.on_loss(0.2)
        assert cc.cwnd_bytes == cwnd

    def test_invalid_rate_scale(self):
        with pytest.raises(ValueError):
            Reno(MSS, rate_scale=0.0)


class TestTcpEndToEnd:
    def test_clean_path_high_utilization(self):
        cfg = quiet_config()
        res = run_tcp(cfg, "cubic", duration_s=20.0, baseline_bps=cfg.access_rate_bps() * cfg.scale)
        assert res.utilization > 0.7
        assert res.timeouts == 0

    def test_bbr_clean_path(self):
        cfg = quiet_config()
        res = run_tcp(cfg, "bbr", duration_s=20.0, baseline_bps=cfg.access_rate_bps() * cfg.scale)
        assert res.utilization > 0.6

    def test_fixed_transfer_completes(self):
        cfg = quiet_config()
        sim = Simulator()
        path = build_cellular_path(sim, cfg, np.random.default_rng(0))
        conn = TcpConnection.establish(sim, path, make_cc("cubic", MSS), transfer_bytes=200_000)
        conn.start()
        sim.run(until=30.0)
        assert conn.sender.done
        assert conn.sender.completed_at is not None
        assert conn.receiver.rcv_next == 200_000

    def test_transfer_survives_heavy_loss(self):
        # Tiny wired buffer forces drops; SACK recovery must still finish.
        cfg = PathConfig(
            profile=NR_PROFILE,
            scale=0.02,
            with_cross_traffic=True,
            with_scheduling_stalls=True,
        )
        sim = Simulator()
        path = build_cellular_path(sim, cfg, np.random.default_rng(5))
        conn = TcpConnection.establish(sim, path, make_cc("reno", MSS), transfer_bytes=500_000)
        conn.start()
        sim.run(until=120.0)
        assert conn.sender.done

    def test_receiver_reassembles_in_order(self):
        cfg = quiet_config()
        sim = Simulator()
        path = build_cellular_path(sim, cfg, np.random.default_rng(0))
        conn = TcpConnection.establish(sim, path, make_cc("reno", MSS), transfer_bytes=100_000)
        conn.start()
        sim.run(until=20.0)
        assert conn.receiver.rcv_next == 100_000
        assert conn.receiver.bytes_received >= 100_000

    def test_rtt_samples_close_to_base(self):
        cfg = quiet_config()
        sim = Simulator()
        path = build_cellular_path(sim, cfg, np.random.default_rng(0))
        conn = TcpConnection.establish(sim, path, make_cc("vegas", MSS), transfer_bytes=50_000)
        conn.start()
        sim.run(until=20.0)
        rtts = [r for _, r in conn.sender.stats.rtt_samples]
        assert min(rtts) >= path.base_rtt_s

    def test_cwnd_trace_recorded(self):
        cfg = quiet_config()
        res = run_tcp(cfg, "cubic", duration_s=5.0, baseline_bps=1e6)
        assert len(res.cwnd_trace) > 10
        times = [t for t, _ in res.cwnd_trace]
        assert times == sorted(times)


class TestUdp:
    def test_lossless_at_low_rate(self):
        cfg = quiet_config()
        res = run_udp(cfg, cfg.access_rate_bps() * cfg.scale * 0.2, duration_s=5.0)
        assert res.loss_rate == pytest.approx(0.0, abs=0.01)

    def test_overload_drops(self):
        cfg = quiet_config()
        res = run_udp(cfg, cfg.access_rate_bps() * cfg.scale * 3.0, duration_s=5.0)
        assert res.loss_rate > 0.3

    def test_throughput_capped_by_access(self):
        cfg = quiet_config()
        capacity = cfg.access_rate_bps() * cfg.scale
        res = run_udp(cfg, capacity * 3.0, duration_s=5.0)
        assert res.throughput_bps <= capacity * 1.05

    def test_sink_seq_accounting(self):
        sim = Simulator()
        cfg = quiet_config()
        path = build_cellular_path(sim, cfg, np.random.default_rng(0))
        sender = UdpSender(sim, path, 1e6)
        sink = UdpSink(path)
        sender.start()
        sim.run(until=1.0)
        sender.stop()
        sim.run(until=2.0)
        assert sink.received == sender.sent
        assert sink.lost_seqs(sender.sent) == []

    def test_invalid_rate(self):
        sim = Simulator()
        path = build_cellular_path(sim, quiet_config(), np.random.default_rng(0))
        with pytest.raises(ValueError):
            UdpSender(sim, path, 0.0)


class TestLossRuns:
    def test_empty(self):
        assert loss_runs([]) == []

    def test_isolated_losses(self):
        assert loss_runs([3, 7, 11]) == [1, 1, 1]

    def test_burst(self):
        assert loss_runs([5, 6, 7, 8, 20, 21]) == [4, 2]

    def test_single(self):
        assert loss_runs([9]) == [1]
