"""Property-based tests over the simulation core.

These pin down the invariants everything else relies on: event ordering,
FIFO delivery, packet conservation, TCP reassembly correctness, and the
monotonicity of the radio chain.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LTE_PROFILE, NR_PROFILE
from repro.net import DropTailQueue, Link, Packet, PathConfig, Simulator, build_cellular_path
from repro.net.link import DelayProcess
from repro.radio.linkadapt import spectral_efficiency_from_sinr
from repro.radio.propagation import uma_los_path_loss_db, uma_nlos_path_loss_db
from repro.transport.base import TcpConnection
from repro.transport.iperf import make_cc


class TestSimulatorProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_events_fire_in_time_order(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda d=d: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=30),
        st.floats(min_value=0.0, max_value=10.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_run_until_never_fires_late_events(self, delays, horizon):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda d=d: fired.append(d))
        sim.run(until=horizon)
        assert all(d <= horizon for d in fired)
        assert sorted(fired) == sorted(d for d in delays if d <= horizon)


class TestLinkProperties:
    @given(
        st.integers(min_value=1, max_value=60),
        st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=30, deadline=None)
    def test_packet_conservation(self, num_packets, capacity):
        """sent == delivered + dropped + queued, always."""
        sim = Simulator()
        link = Link(sim, rate_bps=8e5, delay_s=0.001, queue_capacity_packets=capacity)
        delivered = []
        link.connect(delivered.append)
        for i in range(num_packets):
            link.send(Packet(1, "data", 100, seq=i))
        sim.run()
        assert len(delivered) + link.queue.drops + link.queue.occupancy == num_packets

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_fifo_under_random_delay_process(self, seed):
        sim = Simulator()
        dp = DelayProcess(np.random.default_rng(seed), max_extra_s=0.05, redraw_interval_s=0.02)
        link = Link(sim, rate_bps=8e6, delay_s=0.001, delay_process=dp)
        seqs = []
        link.connect(lambda p: seqs.append(p.seq))
        for i in range(100):
            sim.schedule(i * 0.003, lambda i=i: link.send(Packet(1, "data", 500, seq=i)))
        sim.run()
        assert seqs == sorted(seqs)

    @given(st.integers(min_value=1, max_value=100))
    @settings(max_examples=20, deadline=None)
    def test_droptail_never_exceeds_capacity(self, capacity):
        q = DropTailQueue(capacity)
        for i in range(capacity * 3):
            q.push(Packet(1, "data", 100, seq=i))
        assert len(q) == capacity
        assert q.drops == capacity * 2


class TestTcpProperties:
    @given(
        st.integers(min_value=1_000, max_value=300_000),
        st.sampled_from(["reno", "cubic", "vegas", "veno", "bbr"]),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=12, deadline=None)
    def test_transfer_always_completes_and_reassembles(self, size, algorithm, seed):
        """Any transfer over a lossy path completes with exact reassembly."""
        config = PathConfig(profile=NR_PROFILE, scale=0.02)
        sim = Simulator()
        path = build_cellular_path(sim, config, np.random.default_rng(seed))
        cc = make_cc(algorithm, config.mss_bytes, rate_scale=0.02)
        conn = TcpConnection.establish(sim, path, cc, transfer_bytes=size)
        conn.start()
        sim.run(until=240.0)
        assert conn.sender.done
        assert conn.receiver.rcv_next == size

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_delivered_bytes_monotone(self, seed):
        config = PathConfig(profile=LTE_PROFILE, scale=0.02)
        sim = Simulator()
        path = build_cellular_path(sim, config, np.random.default_rng(seed))
        conn = TcpConnection.establish(
            sim, path, make_cc("cubic", config.mss_bytes, 0.02)
        )
        conn.start()
        sim.run(until=10.0)
        trace = conn.sender.stats.delivered_trace
        values = [d for _, d in trace]
        assert values == sorted(values)
        times = [t for t, _ in trace]
        assert times == sorted(times)


class TestRadioProperties:
    @given(st.floats(min_value=-20.0, max_value=45.0), st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=50)
    def test_spectral_efficiency_monotone(self, sinr, delta):
        assert spectral_efficiency_from_sinr(sinr + delta) >= spectral_efficiency_from_sinr(sinr)

    @given(
        st.floats(min_value=1.0, max_value=900.0),
        st.floats(min_value=1.01, max_value=3.0),
        st.sampled_from([1840.0, 3500.0]),
    )
    @settings(max_examples=50)
    def test_path_loss_monotone_both_classes(self, d, factor, carrier):
        assert uma_los_path_loss_db(d * factor, carrier) > uma_los_path_loss_db(d, carrier)
        assert uma_nlos_path_loss_db(d * factor, carrier) > uma_nlos_path_loss_db(d, carrier)

    @given(st.floats(min_value=1.0, max_value=900.0))
    @settings(max_examples=50)
    def test_5g_attenuates_at_least_as_much(self, d):
        assert uma_nlos_path_loss_db(d, 3500.0) >= uma_nlos_path_loss_db(d, 1840.0)
