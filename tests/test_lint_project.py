"""Tests for the whole-program pass: call-graph construction and exports.

The graph tests build tiny throwaway packages under ``tmp_path`` so each
resolution feature (diamond imports, aliased re-exports, relative
imports, method calls) is exercised in isolation.  The meta-tests at the
bottom keep the rule catalogue honest: every registered rule must have
dirty and clean fixture coverage and a README entry.
"""

import json
import re
from pathlib import Path

from repro.cli import main
from repro.lint import (
    all_project_rules,
    all_rules,
    build_project,
    lint_paths,
    parse_files,
)
from repro.lint.project import GRAPH_SCHEMA_VERSION

REPO_ROOT = Path(__file__).resolve().parents[1]
DIRTY = REPO_ROOT / "tests" / "data" / "lint" / "dirty"
CLEAN = REPO_ROOT / "tests" / "data" / "lint" / "clean"


def build(tmp_path, files):
    """Write ``files`` (relpath -> source) and build the project view."""
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    contexts, errors = parse_files([tmp_path], root=tmp_path)
    assert errors == []
    return build_project(contexts)


class TestCallGraph:
    def test_direct_cross_module_edge(self, tmp_path):
        project = build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": "def helper():\n    return 1\n",
            "pkg/b.py": (
                "from pkg.a import helper\n"
                "def caller():\n"
                "    return helper()\n"
            ),
        })
        callers = [site.caller for site in project.calls_to("pkg.a.helper")]
        assert callers == ["pkg.b.caller"]

    def test_diamond_imports_resolve_to_one_definition(self, tmp_path):
        # left and right both re-export base.helper; top calls it through
        # both paths and each edge must land on the single definition.
        project = build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/base.py": "def helper():\n    return 1\n",
            "pkg/left.py": "from pkg.base import helper\n",
            "pkg/right.py": "from pkg.base import helper\n",
            "pkg/top.py": (
                "from pkg.left import helper as left_helper\n"
                "from pkg.right import helper as right_helper\n"
                "def caller():\n"
                "    return left_helper() + right_helper()\n"
            ),
        })
        sites = project.calls_to("pkg.base.helper")
        assert [site.caller for site in sites] == ["pkg.top.caller"] * 2

    def test_aliased_reexport_chain(self, tmp_path):
        # facade renames the re-export; the chain alias -> re-export ->
        # definition still resolves.
        project = build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/impl.py": "def compute():\n    return 1\n",
            "pkg/facade.py": "from pkg.impl import compute as run_compute\n",
            "pkg/use.py": (
                "from pkg.facade import run_compute\n"
                "def caller():\n"
                "    return run_compute()\n"
            ),
        })
        assert [s.caller for s in project.calls_to("pkg.impl.compute")] == [
            "pkg.use.caller"
        ]

    def test_relative_import_resolves(self, tmp_path):
        project = build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/core/__init__.py": "",
            "pkg/core/util.py": "def helper():\n    return 1\n",
            "pkg/exp/__init__.py": "",
            "pkg/exp/job.py": (
                "from ..core.util import helper\n"
                "def caller():\n"
                "    return helper()\n"
            ),
        })
        assert [s.caller for s in project.calls_to("pkg.core.util.helper")] == [
            "pkg.exp.job.caller"
        ]

    def test_self_method_resolution(self, tmp_path):
        project = build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/runner.py": (
                "class Runner:\n"
                "    def step(self):\n"
                "        return 1\n"
                "    def run(self):\n"
                "        return self.step()\n"
            ),
        })
        assert [s.caller for s in project.calls_to("pkg.runner.Runner.step")] == [
            "pkg.runner.Runner.run"
        ]

    def test_local_definition_shadows_import(self, tmp_path):
        project = build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": "def helper():\n    return 1\n",
            "pkg/b.py": (
                "from pkg.a import helper\n"
                "def helper():\n"
                "    return 2\n"
                "def caller():\n"
                "    return helper()\n"
            ),
        })
        assert project.calls_to("pkg.a.helper") == []
        assert [s.caller for s in project.calls_to("pkg.b.helper")] == [
            "pkg.b.caller"
        ]

    def test_reachability_is_transitive_and_inclusive(self, tmp_path):
        project = build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/chain.py": (
                "def c():\n    return 1\n"
                "def b():\n    return c()\n"
                "def a():\n    return b()\n"
                "def orphan():\n    return 9\n"
            ),
        })
        reachable = project.reachable_from(["pkg.chain.a"])
        assert reachable == {"pkg.chain.a", "pkg.chain.b", "pkg.chain.c"}


class TestGraphExports:
    def test_graph_dict_round_trips_through_json(self):
        contexts, errors = parse_files([DIRTY], root=REPO_ROOT)
        assert errors == []
        project = build_project(contexts)
        doc = json.loads(project.to_json())
        assert doc == project.graph_dict()
        assert doc["schema_version"] == GRAPH_SCHEMA_VERSION
        modules = doc["modules"]
        assert "tests.data.lint.dirty.mobility.flow" in modules
        edges = {(e["caller"], e["callee"]) for e in doc["edges"]}
        assert (
            "tests.data.lint.dirty.experiments.campaign.run",
            "tests.data.lint.dirty.mobility.flow.settle",
        ) in edges

    def test_dot_export_lists_resolved_edges_once(self):
        contexts, _ = parse_files([DIRTY], root=REPO_ROOT)
        dot = build_project(contexts).to_dot()
        assert dot.startswith("digraph replint {")
        assert dot.rstrip().endswith("}")
        edge = (
            '"tests.data.lint.dirty.experiments.campaign.run" '
            '-> "tests.data.lint.dirty.mobility.flow.hold";'
        )
        assert dot.count(edge) == 1  # two call sites, one dot edge

    def test_cli_graph_json_round_trips(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", str(DIRTY), "--graph", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema_version"] == GRAPH_SCHEMA_VERSION
        assert doc["edges"]

    def test_cli_graph_dot(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", str(DIRTY), "--graph", "dot"]) == 0
        assert "digraph replint {" in capsys.readouterr().out


class TestRuleCatalogueMeta:
    """Every shipped rule must stay documented and fixture-covered."""

    def _rule_ids(self):
        return [r.id for r in all_rules() + all_project_rules()]

    def test_every_rule_fires_in_the_dirty_fixture(self):
        fired = {v.rule for v in lint_paths([DIRTY], root=REPO_ROOT).violations}
        missing = set(self._rule_ids()) - fired
        assert not missing, f"rules without dirty-fixture coverage: {sorted(missing)}"

    def test_clean_fixture_exercises_the_same_modules_silently(self):
        dirty_names = {p.name for p in DIRTY.rglob("*.py")}
        clean_names = {p.name for p in CLEAN.rglob("*.py")}
        assert dirty_names == clean_names
        assert lint_paths([CLEAN], root=REPO_ROOT).violations == []

    def test_every_rule_has_a_readme_catalogue_entry(self):
        readme = (REPO_ROOT / "README.md").read_text()
        for rule_id in self._rule_ids():
            assert re.search(rf"\b{rule_id}\b", readme), (
                f"{rule_id} missing from the README rule catalogue"
            )

    def test_every_rule_has_an_id_name_and_severity(self):
        for rule_ in all_rules() + all_project_rules():
            assert re.fullmatch(r"REP\d{3}", rule_.id)
            assert rule_.name != "unnamed"
            assert rule_.severity in ("error", "warning")
