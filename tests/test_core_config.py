"""Unit tests for repro.core.config profiles."""

import pytest

from repro.core import DEFAULT_HANDOFF_CONFIG, LTE_PROFILE, NR_PROFILE, HandoffConfig


class TestProfiles:
    def test_nr_matches_paper_band(self):
        assert NR_PROFILE.carrier_mhz == 3500.0
        assert NR_PROFILE.bandwidth_mhz == 100.0
        assert NR_PROFILE.duplex == "TDD"
        assert NR_PROFILE.generation == 5

    def test_lte_matches_paper_band(self):
        assert LTE_PROFILE.carrier_mhz == 1840.0
        assert LTE_PROFILE.bandwidth_mhz == 20.0
        assert LTE_PROFILE.duplex == "FDD"

    def test_nr_tdd_split_is_3_to_1(self):
        assert NR_PROFILE.dl_slot_fraction == pytest.approx(0.75)
        assert NR_PROFILE.ul_slot_fraction == pytest.approx(0.25)

    def test_slot_duration_from_numerology(self):
        assert LTE_PROFILE.slot_duration_s == pytest.approx(1e-3)
        assert NR_PROFILE.slot_duration_s == pytest.approx(0.5e-3)

    def test_with_overrides_returns_new(self):
        modified = NR_PROFILE.with_overrides(tx_power_dbm=40.0)
        assert modified.tx_power_dbm == 40.0
        assert NR_PROFILE.tx_power_dbm != 40.0
        assert modified.carrier_mhz == NR_PROFILE.carrier_mhz

    def test_invalid_duplex_rejected(self):
        with pytest.raises(ValueError):
            NR_PROFILE.with_overrides(duplex="HD")

    def test_tdd_fractions_cannot_exceed_frame(self):
        with pytest.raises(ValueError):
            NR_PROFILE.with_overrides(dl_slot_fraction=0.9, ul_slot_fraction=0.3)

    def test_fdd_full_duplex_allowed(self):
        # FDD uses separate bands so both directions get the whole frame.
        assert LTE_PROFILE.dl_slot_fraction == 1.0
        assert LTE_PROFILE.ul_slot_fraction == 1.0

    def test_zero_slot_fraction_rejected(self):
        with pytest.raises(ValueError):
            NR_PROFILE.with_overrides(dl_slot_fraction=0.0)

    def test_gnb_more_expensive_than_enb(self):
        assert NR_PROFILE.base_station_cost_usd > LTE_PROFILE.base_station_cost_usd


class TestHandoffConfig:
    def test_paper_defaults(self):
        assert DEFAULT_HANDOFF_CONFIG.hysteresis_db == 3.0
        assert DEFAULT_HANDOFF_CONFIG.time_to_trigger_s == pytest.approx(0.324)

    def test_negative_hysteresis_rejected(self):
        with pytest.raises(ValueError):
            HandoffConfig(hysteresis_db=-1.0)

    def test_negative_ttt_rejected(self):
        with pytest.raises(ValueError):
            HandoffConfig(time_to_trigger_s=-0.1)

    def test_zero_report_interval_rejected(self):
        with pytest.raises(ValueError):
            HandoffConfig(report_interval_s=0.0)
