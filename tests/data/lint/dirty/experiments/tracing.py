"""Deliberately dirty fixture exercising the REP005 span-hygiene rule.

Never imported at runtime: the linter only parses it.  Line numbers are
asserted by tests/test_lint.py — renumber there after editing here.
"""


def leak_discarded(tracer, t_s):
    tracer.begin("attach", t_s)
    return t_s


def leak_unended(tracer, t0_s):
    span = tracer.begin("walk", t0_s)
    return span is not None
