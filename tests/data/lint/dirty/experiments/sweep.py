"""Deliberately dirty fixture exercising every replint rule.

Never imported at runtime: the linter only parses it.  Line numbers are
asserted by tests/test_lint.py — renumber there after editing here.
"""

import random
import time

import numpy as np

from repro.net.sim import Simulator

history = []


def jitter(window_ms, delay_s):
    rng = np.random.default_rng(0)
    noise = random.random() + time.time()
    total_ms = window_ms + delay_s
    configure(bandwidth_hz=window_ms)
    return rng, noise, total_ms


def schedule_badly(sim, on_retransmit_timeout):
    sim.schedule(-1.0, tick)
    sim.schedule(5.0, on_retransmit_timeout)


def sweep(seeds, out=[]):
    for seed in seeds:
        sim = Simulator()
        out.append((seed, sim))
    return out


def suppressed():
    return np.random.default_rng(1)  # replint: ignore[REP001]


def tick():
    pass


def configure(bandwidth_hz):
    return bandwidth_hz
