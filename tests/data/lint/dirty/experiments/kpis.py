"""Deliberately dirty fixture exercising the REP006 metric-name rule.

Never imported at runtime: the linter only parses it.  Line numbers are
asserted by tests/test_lint.py — renumber there after editing here.
"""

from repro.experiments.common import bump_kpi, record_kpi, record_kpi_samples


def publish(registry, latencies, tag):
    record_kpi("fig0.ho-latency.mean_ms", 1.0)
    record_kpi("fig0.throughput.day", 2.0)
    record_kpi_samples("fig0.CamelCase.samples_ms", latencies)
    bump_kpi("fig0.events")
    registry.gauge("fig0.energy.t5")
    registry.quantile(f"fig0.rtt.{tag}.paths")
