"""Deliberately dirty fixture: the caller side of the project-pass flows.

``run()`` is an experiment root, so everything it calls in
``mobility/flow.py`` is experiment-reachable; the ``_ms`` value passed
positionally into a ``_s`` parameter two modules away is exactly what
REP009 exists for.  Never imported at runtime: the linter only parses
it.  Line numbers are asserted by tests/test_lint.py — renumber there
after editing here.
"""

from ..mobility.flow import backoff_ms, draw_samples, hold, record, settle


def run(seed=0):
    window_ms = 40.0
    gap_s = 0.2
    settled = settle(window_ms, 3.0)
    hold(window_ms)
    hold(gap_s)
    delay_s = backoff_ms(2)
    samples = draw_samples()
    record(samples)
    return settled, delay_s, samples
