"""Deliberately dirty fixture exercising REP007 (ambient deployment).

Never imported at runtime: the linter only parses it.  Line numbers are
asserted by tests/test_lint.py — renumber there after editing here.
"""

from repro.core.config import LTE_PROFILE, NR_PROFILE
from repro.core import DEFAULT_HANDOFF_CONFIG
from repro.core import config


def run(seed=7):
    profile = config.NR_PROFILE
    return LTE_PROFILE, NR_PROFILE, DEFAULT_HANDOFF_CONFIG, profile
