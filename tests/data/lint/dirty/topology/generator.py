"""Dirty fixture for REP013: bare generator knobs, self-minted RNG."""

from repro.core import rng as core_rng
from repro.core.rng import RngFactory


def road_positions(extent_m: float, pitch: float, jitter: float) -> list:
    rng = RngFactory(7).stream("topology.roads")
    count = max(1, round(extent_m / pitch) - 1)
    return [float(rng.uniform(0.0, jitter)) for _ in range(count)]


def place_sites(width_m: float, height_m: float, site_count: int) -> list:
    rng = core_rng.default_rng(3)
    return [
        (float(rng.uniform(0.0, width_m)), float(rng.uniform(0.0, height_m)))
        for _ in range(site_count)
    ]
