"""Deliberately dirty fixture: the callee side of the project-pass flows.

Every function here is called from ``experiments/campaign.py`` — the
REP009/REP010 whole-program pass resolves those cross-module edges
(through a relative import) and flags the unit and RNG-provenance slips
a per-file rule cannot see.  Never imported at runtime: the linter only
parses it.  Line numbers are asserted by tests/test_lint.py — renumber
there after editing here.
"""

from repro.core.rng import RngFactory, default_rng

_ho_log = []


def settle(window_s, margin_db):
    return window_s * 2


def hold(duration, hyst_db=3.0):
    return duration


def backoff_ms(attempt):
    return attempt * 500.0


def guard_ms(window_s):
    return window_s


def draw_samples():
    factory = RngFactory(42)
    return factory.stream("bursts")


def jitter_s(rng):
    fresh = default_rng(0)
    return float(fresh.normal() + rng.normal())


def record(event):
    _ho_log.append(event)
