"""Dirty fixture for REP012: bad audit names, a probe that mutates state."""


class LeakyCodel:
    def __init__(self, auditor):
        self.auditor = auditor
        self.drops = 0
        self.occupancy = 3

    def _register_audit(self):
        self.auditor.note("qdisc.enqueue_count", 0.0)
        self.auditor.watch("audit.codel.Backlog-Bytes", lambda: 0)
        self.auditor.watch("audit.codel.backlog", lambda: 0)

    def _audit_occupancy(self, now_s: float) -> None:
        self.drops += 1
        self.auditor.probe(
            "audit.codel.occupancy_bounds_pkts", self.occupancy >= 0, now_s
        )
