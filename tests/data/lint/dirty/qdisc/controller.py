"""Dirty fixture for REP011: unsuffixed remedy knobs, wall-clock control loop."""

import time
from dataclasses import dataclass


@dataclass(frozen=True)
class RemedySection:
    qdisc: str = "codel"
    target: float = 5.0
    buffer_limit: int = 25
    shaper_ratio: float = 0.95


def tick(cake, target_ms: float) -> float:
    started = time.monotonic()
    if cake.stats.last_sojourn_s * 1e3 > target_ms:
        cake.shaper_rate_bps *= 0.9
    return time.perf_counter() - started
