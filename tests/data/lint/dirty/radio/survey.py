"""Deliberately dirty fixture exercising the REP008 scalar-hot-path rule.

Never imported at runtime: the linter only parses it.  Line numbers are
asserted by tests/test_lint.py — renumber there after editing here.
"""


def slow_survey(network, locations):
    points = []
    for location in locations:
        rsrps = network.rsrp_map_at(location)
        points.append(max(rsrps.values()))
    return points


def slow_map(network, location):
    return {cell.pci: cell.rsrp_at(location, network.environment) for cell in network.cells}


def slow_best(network, location):
    best = None
    for cell in network.cells:
        sample = network.sample_at(location, serving_pci=cell.pci)
        if best is None or sample.sinr_db > best:
            best = sample.sinr_db
    return best


def allowed_per_cell_geometry(network, location):
    # Attribute reads and distance math over .cells are fine — only the
    # scalar radio evaluators have batched twins.
    return [cell.distance_to(location) for cell in network.cells]
