"""Clean twin: suffixed generator knobs, randomness from the injected rng."""

import numpy as np


def road_positions(
    extent_m: float, pitch_m: float, jitter_ratio: float, rng: np.random.Generator
) -> list:
    count = max(1, round(extent_m / pitch_m) - 1)
    return [float(rng.uniform(0.0, jitter_ratio)) for _ in range(count)]


def place_sites(
    width_m: float, height_m: float, site_count: int, rng: np.random.Generator
) -> list:
    return [
        (float(rng.uniform(0.0, width_m)), float(rng.uniform(0.0, height_m)))
        for _ in range(site_count)
    ]
