"""Clean twin: namespaced, unit-suffixed audit names; read-only probes."""


class AccountedCodel:
    def __init__(self, auditor):
        self.auditor = auditor
        self.drops = 0
        self.occupancy = 3

    def _register_audit(self):
        self.auditor.note("audit.codel.enqueue_count", 0.0)
        self.auditor.watch("audit.codel.backlog_bytes", lambda: 0)

    def _audit_occupancy(self, now_s: float) -> None:
        self.auditor.probe(
            "audit.codel.occupancy_bounds_pkts", self.occupancy >= 0, now_s
        )

    def record_drop(self) -> None:
        self.drops += 1
