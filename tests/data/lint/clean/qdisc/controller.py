"""Clean twin: suffixed remedy knobs, virtual-time control loop."""

from dataclasses import dataclass


@dataclass(frozen=True)
class RemedySection:
    qdisc: str = "codel"
    target_ms: float = 5.0
    buffer_limit_pkts: int = 25
    shaper_ratio: float = 0.95


def tick(cake, now_s: float, target_ms: float) -> float:
    if cake.stats.last_sojourn_s * 1e3 > target_ms:
        cake.shaper_rate_bps *= 0.9
    return now_s
