"""Clean twin of the REP007 fixture: deployment knobs from the Scenario.

The experiment reads radio profiles and the hand-off configuration off
the scenario threaded into ``run()``, so alternative deployments (SA
mode, mmWave, densified grids) flow through without code changes.
"""

from repro.scenario import resolve_scenario


def run(seed=7, scenario=None):
    scn = resolve_scenario(scenario)
    return scn.radio.lte, scn.radio.nr, scn.handoff
