"""Clean twin of the dirty KPI fixture: sanctioned metric naming.

Every name is lowercase dotted and ends in a ``core.units`` suffix or
``_count``/``_ratio``; f-string names keep the suffix in the literal
tail so it stays statically checkable.
"""

from repro.experiments.common import bump_kpi, record_kpi, record_kpi_samples


def publish(registry, latencies, tag):
    record_kpi("fig0.ho_latency.mean_ms", 1.0)
    record_kpi("fig0.throughput.day_bps", 2.0)
    record_kpi_samples("fig0.latency.samples_ms", latencies)
    bump_kpi("fig0.events_count")
    registry.gauge("fig0.energy.t5_nj")
    registry.quantile(f"fig0.rtt.{tag}.paths_ms")
