"""Clean twin of the dirty campaign fixture.

Units agree across the module boundary, the campaign seed threads into
every generator, and the hand-off log is an explicit local passed to the
helper that appends to it.
"""

from repro.core.rng import default_rng

from ..mobility.flow import backoff_ms, draw_samples, guard_ms, hold, record, settle


def run(seed=0):
    rng = default_rng(seed)
    window_s = 0.04
    settled = settle(window_s, 3.0)
    hold(window_s)
    hold(0.2)
    delay_ms = backoff_ms(2)
    guard = guard_ms(window_s)
    samples = draw_samples(rng)
    log = []
    record(log, samples)
    return settled, delay_ms, guard, log
