"""Clean twin of the dirty fixture: every replint invariant honoured.

Randomness is parameterised or drawn via repro.core.rng, units agree in
every additive expression and keyword, timers keep their handles, the
simulator is built per repetition and no mutable state hides at module
or default-argument level.
"""

from repro.core.rng import default_rng
from repro.net.sim import Simulator

HISTORY: tuple = ()


def jitter(window_ms, delay_ms, rng):
    noise_ms = float(rng.uniform(0.0, 1.0))
    total_ms = window_ms + delay_ms + noise_ms
    center_hz = 3.5e9
    configure(bandwidth_hz=center_hz)
    return total_ms


def schedule_well(sim, on_retransmit_timeout):
    sim.schedule(1.0, tick)
    timer = sim.schedule(5.0, on_retransmit_timeout)
    return timer


def _run_point(seed):
    sim = Simulator()
    rng = default_rng(seed)
    return sim, float(rng.uniform(0.0, 1.0))


def sweep(seeds, out=None):
    if out is None:
        out = []
    out.extend(_run_point(seed) for seed in seeds)
    return out


def tick():
    pass


def configure(bandwidth_hz):
    return bandwidth_hz
