"""Clean twin of the dirty tracing fixture: sanctioned span usage.

Spans either close their handle in the same function or use the
self-closing context-manager form.
"""


def paired(tracer, t0_s, t1_s):
    span = tracer.begin("attach", t0_s)
    span.end(t1_s)


def managed(tracer, clock):
    with tracer.span("walk", clock):
        pass
