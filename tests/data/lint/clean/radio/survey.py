"""Clean twin of the dirty REP008 fixture: the sanctioned batched forms."""


def fast_survey(network, locations):
    matrix = network.rsrp_matrix_at(locations)
    return matrix.max(axis=1).tolist()


def fast_map(network, location):
    row = network.rsrp_matrix_at((location,))[0]
    return dict(zip(network.pcis, row.tolist()))


def fast_best(network, locations):
    sinrs = [sample.sinr_db for sample in network.samples_at(locations)]
    return max(sinrs)


def allowed_per_cell_geometry(network, location):
    return [cell.distance_to(location) for cell in network.cells]
