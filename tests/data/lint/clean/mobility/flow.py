"""Clean twin of the dirty mobility fixture: disciplined units and RNG.

Parameters carry their unit suffix, functions whose names declare a
unit return that unit, generators are derived from the threaded one via
``repro.core.rng.derive``, and accumulating state is passed in
explicitly instead of living at module level.
"""

from repro.core.rng import derive

#: SHOUTED frozen lookup table — immutable by construction.
_HO_PHASES = ("prep", "exec", "done")


def settle(window_s, margin_db):
    return window_s * 2


def hold(duration_s, hyst_db=3.0):
    return duration_s


def backoff_ms(attempt):
    return attempt * 500.0


def guard_ms(window_s):
    return window_s * 1000.0


def draw_samples(rng):
    child = derive(rng)
    return child.normal(size=3)


def record(log, event):
    log.append(event)
