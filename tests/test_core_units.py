"""Unit tests for repro.core.units."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import units


class TestPowerConversions:
    def test_dbm_to_mw_zero_dbm_is_one_mw(self):
        assert units.dbm_to_mw(0.0) == pytest.approx(1.0)

    def test_dbm_to_mw_30_dbm_is_one_watt(self):
        assert units.dbm_to_mw(30.0) == pytest.approx(1000.0)

    def test_mw_to_dbm_roundtrip_fixed(self):
        assert units.mw_to_dbm(100.0) == pytest.approx(20.0)

    def test_mw_to_dbm_rejects_zero(self):
        with pytest.raises(ValueError):
            units.mw_to_dbm(0.0)

    def test_mw_to_dbm_rejects_negative(self):
        with pytest.raises(ValueError):
            units.mw_to_dbm(-5.0)

    @given(st.floats(min_value=-120.0, max_value=80.0))
    def test_roundtrip_dbm(self, dbm):
        assert units.mw_to_dbm(units.dbm_to_mw(dbm)) == pytest.approx(dbm, abs=1e-9)

    @given(st.floats(min_value=-60.0, max_value=60.0))
    def test_db_linear_roundtrip(self, db):
        assert units.linear_to_db(units.db_to_linear(db)) == pytest.approx(db, abs=1e-9)

    def test_db_to_linear_3db_doubles(self):
        assert units.db_to_linear(3.0103) == pytest.approx(2.0, rel=1e-4)

    def test_linear_to_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.linear_to_db(0.0)


class TestRatesAndSizes:
    def test_mbps(self):
        assert units.mbps(880.0) == 880e6

    def test_gbps(self):
        assert units.gbps(1.0) == 1e9

    def test_kbps(self):
        assert units.kbps(64.0) == 64e3

    def test_byte_sizes_are_powers_of_two(self):
        assert units.MB == 1024 * units.KB
        assert units.GB == 1024 * units.MB


class TestThermalNoise:
    def test_noise_grows_with_bandwidth(self):
        narrow = units.thermal_noise_dbm(15e3)
        wide = units.thermal_noise_dbm(100e6)
        assert wide > narrow

    def test_noise_scaling_is_10log10(self):
        n1 = units.thermal_noise_dbm(1e6)
        n10 = units.thermal_noise_dbm(10e6)
        assert n10 - n1 == pytest.approx(10.0)

    def test_known_value_20mhz(self):
        # -174 + 10log10(20e6) + 7 = -93.99 dBm
        assert units.thermal_noise_dbm(20e6, 7.0) == pytest.approx(-93.99, abs=0.01)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            units.thermal_noise_dbm(0.0)
