"""Tests for the remedy subsystem: qdiscs, autorate, link integration.

The qdisc contract (``repro.qdisc.base``) runs on virtual time and draws
no randomness, so every test here is exact — no tolerances, no seeds
except where a path's own stochastic processes are exercised.
"""

import pytest

from repro.net import Link, Packet, Simulator
from repro.qdisc import (
    AutorateController,
    CakeQueue,
    CoDelQueue,
    FqCodelQueue,
    QdiscStats,
    RemedySection,
    ShaperState,
    flow_hash,
    make_qdisc,
)


def pkt(size_bytes=1448, flow_id=1, host_id=None):
    meta = {} if host_id is None else {"host_id": host_id}
    return Packet(flow_id, "data", size_bytes, meta=meta)


class TestQdiscStats:
    def test_mean_sojourn_accumulates_and_resets(self):
        stats = QdiscStats()
        stats.note_sojourn(0.010)
        stats.note_sojourn(0.030)
        assert stats.take_mean_sojourn_s() == pytest.approx(0.020)
        # The accumulator reset: an idle interval reads as zero delay.
        assert stats.take_mean_sojourn_s() == 0.0

    def test_peak_sojourn_resets(self):
        stats = QdiscStats()
        stats.note_sojourn(0.002)
        stats.note_sojourn(0.008)
        stats.note_sojourn(0.004)
        assert stats.take_peak_sojourn_s() == pytest.approx(0.008)
        assert stats.take_peak_sojourn_s() == 0.0


class TestCoDel:
    def test_fifo_below_target(self):
        q = CoDelQueue(capacity_packets=10)
        first, second = pkt(), pkt()
        assert q.enqueue(first, 0.0)
        assert q.enqueue(second, 0.0)
        # Sojourns below target: pure FIFO, no control-law drops.
        assert q.dequeue(0.001) is first
        assert q.dequeue(0.002) is second
        assert q.drops == 0

    def test_tail_drop_at_capacity(self):
        q = CoDelQueue(capacity_packets=2)
        assert q.enqueue(pkt(), 0.0)
        assert q.enqueue(pkt(), 0.0)
        assert not q.enqueue(pkt(), 0.0)
        assert q.stats.drops == 1
        assert q.occupancy == 2

    def test_byte_occupancy_tracks_queue(self):
        q = CoDelQueue(capacity_packets=10)
        q.enqueue(pkt(size_bytes=1000), 0.0)
        q.enqueue(pkt(size_bytes=500), 0.0)
        assert q.occupancy_bytes == 1500
        q.dequeue(0.0)
        assert q.occupancy_bytes == 500

    def test_control_law_head_drops_standing_queue(self):
        q = CoDelQueue(capacity_packets=100, target_s=0.005, interval_s=0.1)
        dropped = []
        q.on_drop = dropped.append
        for _ in range(50):
            q.enqueue(pkt(), 0.0)
        # Drain slowly: every packet's sojourn is far above target, so
        # once the first interval expires CoDel starts dropping at the
        # head and ramps the drop rate.
        now, delivered = 0.0, 0
        while q.occupancy:
            if q.dequeue(now) is not None:
                delivered += 1
            now += 0.05
        assert q.stats.aqm_drops > 0
        assert len(dropped) == q.stats.aqm_drops
        assert delivered + q.stats.aqm_drops == 50

    def test_drop_rate_ramps(self):
        q = CoDelQueue(capacity_packets=200, target_s=0.001, interval_s=0.02)
        for _ in range(150):
            q.enqueue(pkt(), 0.0)
        # Count dequeue steps (integers: immune to float accumulation)
        # between successive control-law drops.
        drop_steps = []
        before = q.stats.aqm_drops
        step = 0
        while q.occupancy:
            q.dequeue(step * 0.002)
            if q.stats.aqm_drops > before:
                drop_steps.append(step)
                before = q.stats.aqm_drops
            step += 1
        gaps = [b - a for a, b in zip(drop_steps, drop_steps[1:])]
        # interval/sqrt(count): the first gap is the widest and the drop
        # rate at least doubles by the end of the standing queue.
        assert len(gaps) >= 5
        assert gaps[0] == max(gaps)
        assert gaps[-1] <= gaps[0] // 2

    def test_validation(self):
        with pytest.raises(ValueError):
            CoDelQueue(capacity_packets=0)
        with pytest.raises(ValueError):
            CoDelQueue(target_s=-1.0)


class TestFqCodel:
    def test_flow_hash_deterministic(self):
        assert flow_hash(7, 1024) == flow_hash(7, 1024)
        assert 0 <= flow_hash(123456, 64) < 64

    def test_drr_interleaves_backlogged_flows(self):
        q = FqCodelQueue(capacity_packets=100, quantum_bytes=1448)
        for _ in range(3):
            q.enqueue(pkt(flow_id=1), 0.0)
            q.enqueue(pkt(flow_id=2), 0.0)
        order = [q.dequeue(0.0).flow_id for _ in range(6)]
        # One quantum per turn: neither flow is served twice in a row
        # beyond its quantum while the other is backlogged.
        assert sorted(order[:2]) == [1, 2]
        assert sorted(order) == [1, 1, 1, 2, 2, 2]

    def test_sparse_flow_served_first(self):
        q = FqCodelQueue(capacity_packets=100, quantum_bytes=1448)
        for _ in range(10):
            q.enqueue(pkt(flow_id=1), 0.0)
        q.dequeue(0.0)  # flow 1 exhausts its new-flow credit, moves to old
        q.enqueue(pkt(flow_id=2, size_bytes=100), 0.0)
        # The thin newcomer jumps the 9-packet backlog.
        assert q.dequeue(0.0).flow_id == 2

    def test_shared_capacity_tail_drop(self):
        q = FqCodelQueue(capacity_packets=4)
        for _ in range(4):
            assert q.enqueue(pkt(flow_id=1), 0.0)
        assert not q.enqueue(pkt(flow_id=2), 0.0)
        assert q.stats.drops == 1

    def test_occupancy_coherent_after_aqm_drops(self):
        q = FqCodelQueue(capacity_packets=100, target_s=0.001, interval_s=0.01)
        for _ in range(40):
            q.enqueue(pkt(flow_id=1), 0.0)
        now, delivered = 0.0, 0
        while q.occupancy:
            if q.dequeue(now) is not None:
                delivered += 1
            now += 0.02
        assert q.stats.aqm_drops > 0
        assert delivered + q.stats.aqm_drops == 40
        assert q.occupancy == 0 and q.occupancy_bytes == 0


class TestCake:
    def test_shaper_withholds_until_eligible(self):
        # 1000 B at 1 Mbps shaped rate: 8 ms per packet.
        q = CakeQueue(shaper_rate_bps=1e6)
        q.enqueue(pkt(size_bytes=1000), 0.0)
        q.enqueue(pkt(size_bytes=1000), 0.0)
        assert q.dequeue(0.0) is not None
        assert q.next_ready_s(0.0) == pytest.approx(0.008)
        assert q.dequeue(0.004) is None  # shaped: not yet eligible
        assert q.dequeue(0.008) is not None
        assert q.next_ready_s(0.016) is None  # empty: nothing to wake for

    def test_host_isolation(self):
        q = CakeQueue(shaper_rate_bps=1e9, quantum_bytes=1000)
        # Host A runs four flows, host B one; DRR over hosts first means
        # B still gets every other service turn.
        for flow in range(4):
            q.enqueue(pkt(size_bytes=1000, flow_id=10 + flow, host_id=1), 0.0)
        q.enqueue(pkt(size_bytes=1000, flow_id=99, host_id=2), 0.0)
        # Dequeue at the shaper's eligibility times, not back-to-back.
        first = q.dequeue(0.0)
        second = q.dequeue(q.next_ready_s(0.0))
        hosts = {p.meta["host_id"] for p in (first, second)}
        assert hosts == {1, 2}

    def test_shaper_rate_is_retunable(self):
        q = CakeQueue(shaper_rate_bps=1e6)
        q.enqueue(pkt(size_bytes=1000), 0.0)
        q.dequeue(0.0)
        q.shaper_rate_bps = 2e6  # what the autorate controller does
        q.enqueue(pkt(size_bytes=1000), 0.009)
        q.enqueue(pkt(size_bytes=1000), 0.009)
        assert q.dequeue(0.009) is not None
        # The withheld second packet becomes eligible one serialization
        # (at the NEW rate: 4 ms, not 8 ms) after the first.
        assert q.next_ready_s(0.009) == pytest.approx(0.013)

    def test_validation(self):
        with pytest.raises(ValueError):
            CakeQueue(shaper_rate_bps=0.0)
        with pytest.raises(ValueError):
            CakeQueue(shaper_rate_bps=1e6, hosts_count=0)


class TestMakeQdisc:
    def test_droptail_returns_none(self):
        # None (not a DropTail-flavoured qdisc): the default path must
        # keep the seed's exact event schedule.
        assert make_qdisc(RemedySection(), 25, 1e9) is None

    @pytest.mark.parametrize(
        "name,cls",
        [("codel", CoDelQueue), ("fq-codel", FqCodelQueue), ("cake", CakeQueue)],
    )
    def test_builds_each_discipline(self, name, cls):
        q = make_qdisc(RemedySection(qdisc=name), 25, 1e9)
        assert isinstance(q, cls)

    def test_aqm_buffer_ratio_scales_capacity(self):
        remedy = RemedySection(qdisc="codel", aqm_buffer_ratio=8.0)
        q = make_qdisc(remedy, 25, 1e9)
        assert q.capacity_packets == 200

    def test_cake_shaper_rate_from_ratio(self):
        remedy = RemedySection(qdisc="cake", shaper_ratio=0.9)
        q = make_qdisc(remedy, 25, 1e6)
        assert q.shaper_rate_bps == pytest.approx(0.9e6)


class TestAutorate:
    def _controller(self, interval_s=0.5):
        sim = Simulator()
        cake = CakeQueue(shaper_rate_bps=1e6)
        link = Link(sim, rate_bps=1e6, delay_s=0.0, qdisc=cake)
        link.connect(lambda p: None)
        ctl = AutorateController(
            sim, link, cake, target_s=0.003, interval_s=interval_s, floor_ratio=0.5, horizon_s=5.0
        )
        return sim, cake, ctl

    def test_classify_thresholds(self):
        _, _, ctl = self._controller()
        assert ctl.classify(0.0) is ShaperState.GREEN
        assert ctl.classify(0.003) is ShaperState.GREEN
        assert ctl.classify(0.005) is ShaperState.YELLOW
        assert ctl.classify(0.010) is ShaperState.SOFT_RED
        assert ctl.classify(0.050) is ShaperState.RED

    def test_red_cuts_toward_floor_green_recovers(self):
        sim, cake, ctl = self._controller(interval_s=0.5)
        # Fake a congested interval: the tick reads the mean sojourn.
        cake.stats.note_sojourn(0.050)
        sim.run(until=0.6)  # one tick
        assert ctl.state is ShaperState.RED
        assert cake.shaper_rate_bps == pytest.approx(0.85e6)
        # Queue drained: GREEN probes back up, clamped at the ceiling.
        sim.run(until=4.9)
        assert ctl.state is ShaperState.GREEN
        assert cake.shaper_rate_bps == ctl.ceiling_bps

    def test_rate_never_leaves_floor_ceiling_band(self):
        sim, cake, ctl = self._controller(interval_s=0.1)
        for tick in range(40):
            cake.stats.note_sojourn(0.500)  # permanently red
        sim.run(until=4.9)
        assert cake.shaper_rate_bps >= ctl.floor_bps - 1e-9

    def test_dwell_accounting_covers_horizon(self):
        sim, cake, ctl = self._controller(interval_s=0.5)
        sim.run()  # controller self-terminates at its 5 s horizon
        total = sum(ctl.dwell_s.values())
        assert total == pytest.approx(5.0)
        assert ctl.ticks == 10

    def test_validation(self):
        sim = Simulator()
        cake = CakeQueue(shaper_rate_bps=1e6)
        link = Link(sim, rate_bps=1e6, delay_s=0.0, qdisc=cake)
        with pytest.raises(ValueError):
            AutorateController(sim, link, cake, target_s=0.0)
        with pytest.raises(ValueError):
            AutorateController(sim, link, cake, target_s=0.003, floor_ratio=1.5)


class TestLinkPauseResume:
    """Regression tests: pause()/resume() vs in-flight serialization."""

    def _link(self, sim, capacity=10, qdisc=None):
        # 125-byte packets at 1 Mbps: exactly 1 ms serialization each.
        link = Link(
            sim, rate_bps=1e6, delay_s=0.0, queue_capacity_packets=capacity, qdisc=qdisc
        )
        delivered = []
        link.connect(delivered.append)
        return link, delivered

    def test_pause_mid_serialization_finishes_in_flight_packet(self):
        sim = Simulator()
        link, delivered = self._link(sim)
        for _ in range(3):
            link.send(pkt(size_bytes=125))
        sim.schedule(0.0005, link.pause)  # mid first serialization
        sim.run(until=0.01)
        # The in-flight packet completes (a paused radio does not
        # un-serialize), but the queue stops being served.
        assert len(delivered) == 1
        assert link.queue.occupancy == 2
        link.resume()
        sim.run()
        assert len(delivered) == 3
        assert link.queue.occupancy == 0

    def test_sends_while_paused_queue_and_overflow(self):
        sim = Simulator()
        link, delivered = self._link(sim, capacity=2)
        link.pause()
        for _ in range(5):
            link.send(pkt(size_bytes=125))
        sim.run(until=0.1)
        assert delivered == []
        assert link.queue.occupancy == 2
        assert len(link.dropped_packets) == 3
        link.resume()
        sim.run()
        assert len(delivered) == 2

    def test_resume_without_pause_is_noop(self):
        sim = Simulator()
        link, delivered = self._link(sim)
        link.resume()  # must not start a phantom transmission
        link.send(pkt(size_bytes=125))
        sim.run()
        assert len(delivered) == 1

    def test_pause_resume_with_codel_qdisc(self):
        sim = Simulator()
        link, delivered = self._link(sim, qdisc=CoDelQueue(capacity_packets=10))
        for _ in range(4):
            link.send(pkt(size_bytes=125))
        sim.schedule(0.0015, link.pause)
        sim.schedule(0.050, link.resume)
        sim.run()
        assert len(delivered) == 4
        assert link.qdisc.occupancy == 0

    def test_shaper_wake_respects_pause(self):
        sim = Simulator()
        # Shaped far below the serializer: the link goes idle between
        # releases and relies on _schedule_wake.
        cake = CakeQueue(shaper_rate_bps=1e5)
        link, delivered = self._link(sim, qdisc=cake)
        for _ in range(3):
            link.send(pkt(size_bytes=125))
        sim.schedule(0.0015, link.pause)  # pause while a wake is pending
        sim.run(until=0.5)
        assert len(delivered) < 3
        link.resume()
        sim.run()
        assert len(delivered) == 3

    def test_double_pause_single_resume(self):
        sim = Simulator()
        link, delivered = self._link(sim)
        link.pause()
        link.pause()
        link.send(pkt(size_bytes=125))
        link.resume()
        sim.run()
        assert len(delivered) == 1
