"""Tests for repro.metrics: sketches, registry, merge algebra, exporters.

The load-bearing property is merge determinism: per-worker registry
snapshots must combine into byte-identical campaign snapshots regardless
of completion order.  The property test at the bottom proves it over
real catalogue experiments (a cheap subset in tier-1; the whole
catalogue when ``REPRO_FULL_METRICS_SWEEP=1``, which CI sets).
"""

import json
import os
import random

import pytest

from repro.cli import main
from repro.core.rng import RngFactory
from repro.experiments.registry import EXPERIMENTS
from repro.metrics import (
    FixedHistogram,
    MetricRegistry,
    P2Quantile,
    ReservoirQuantile,
    Welford,
    collecting,
    current,
    diff_snapshots,
    load_snapshot,
    merge_snapshots,
    summarize_entry,
    to_jsonl_lines,
    to_prometheus_lines,
    write_jsonl,
)
from repro.metrics.core import NULL_REGISTRY
from repro.metrics.sketches import combine_moments
from repro.runner import bench_payload, compare_payloads, merged_metrics, run_campaign

#: Cheap catalogue experiments that register KPIs (tier-1 subset).
KPI_CHEAP = ["fig13", "fig21", "fig22", "tab4"]


def _canon(snapshot):
    return json.dumps(snapshot, sort_keys=True)


def _samples(tag, n=400):
    rng = RngFactory(99).stream(f"metrics:{tag}")
    return [float(v) for v in rng.normal(50.0, 12.0, size=n)]


class TestWelford:
    def test_matches_exact_moments(self):
        xs = _samples("welford")
        w = Welford()
        for x in xs:
            w.observe(x)
        mean = sum(xs) / len(xs)
        var = sum((x - mean) ** 2 for x in xs) / len(xs)
        assert w.count == len(xs)
        assert w.mean == pytest.approx(mean)
        assert w.variance == pytest.approx(var)
        assert w.minimum == min(xs)
        assert w.maximum == max(xs)

    def test_combine_matches_single_stream(self):
        xs = _samples("combine")
        whole, left, right = Welford(), Welford(), Welford()
        for x in xs:
            whole.observe(x)
        for x in xs[:150]:
            left.observe(x)
        for x in xs[150:]:
            right.observe(x)
        count, mean, m2, mn, mx = combine_moments([left.state(), right.state()])
        assert count == whole.count
        assert mean == pytest.approx(whole.mean)
        assert m2 == pytest.approx(whole.m2)
        assert (mn, mx) == (whole.minimum, whole.maximum)


class TestReservoirQuantile:
    def test_quantiles_close_to_exact(self):
        xs = _samples("reservoir", n=3000)
        sketch = ReservoirQuantile(k=512, tag="t")
        for x in xs:
            sketch.observe(x)
        exact = sorted(xs)[len(xs) // 2]
        assert sketch.quantile(50.0) == pytest.approx(exact, abs=3.0)
        assert sketch.mean == pytest.approx(sum(xs) / len(xs))
        assert sketch.count == len(xs)

    def test_retention_is_deterministic_per_tag(self):
        xs = _samples("det", n=1000)
        a, b = ReservoirQuantile(k=64, tag="t"), ReservoirQuantile(k=64, tag="t")
        for x in xs:
            a.observe(x)
            b.observe(x)
        assert a.items() == b.items()
        c = ReservoirQuantile(k=64, tag="other")
        for x in xs:
            c.observe(x)
        assert c.items() != a.items()

    def test_empty_raises_uniform_message(self):
        with pytest.raises(ValueError, match="^empty sample$"):
            ReservoirQuantile(k=8, tag="t").quantile(50.0)


class TestP2Quantile:
    def test_tracks_uniform_median(self):
        sketch = P2Quantile(0.5)
        for i in range(1, 10001):
            sketch.observe(float(i % 997))
        assert sketch.value() == pytest.approx(498.0, rel=0.05)


class TestFixedHistogram:
    def test_binning_and_outliers(self):
        h = FixedHistogram([0.0, 10.0, 20.0])
        for v in (-5.0, 5.0, 15.0, 15.0, 25.0):
            h.observe(v)
        assert h.counts == [1, 2]
        assert (h.below, h.above) == (1, 1)
        assert h.total == pytest.approx(55.0)


class TestRegistry:
    def test_kind_clash_raises(self):
        reg = MetricRegistry(origin="a")
        reg.counter("x.events_count")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x.events_count")

    def test_invalid_name_rejected(self):
        reg = MetricRegistry(origin="a")
        with pytest.raises(ValueError, match="invalid metric name"):
            reg.counter("Bad-Name")

    def test_unobserved_metrics_omitted_from_snapshot(self):
        reg = MetricRegistry(origin="a")
        reg.gauge("x.unset_ms")
        reg.quantile("x.empty_ms")
        reg.welford("x.none_ms")
        reg.counter("x.zero_count")  # counters report even at zero
        names = set(reg.snapshot()["metrics"])
        assert names == {"x.zero_count"}

    def test_ambient_stack_and_null_registry(self):
        assert current() is NULL_REGISTRY
        current().gauge("ignored.value_ms").set(1.0)  # absorbed, no error
        with collecting(origin="t") as reg:
            assert current() is reg
            current().counter("t.hits_count").inc()
        assert current() is NULL_REGISTRY
        assert reg.snapshot()["metrics"]["t.hits_count"]["parts"] == {"t": 1.0}


class TestMergeAlgebra:
    def _registry(self, origin, shift):
        reg = MetricRegistry(origin=origin)
        reg.counter("m.events_count").inc(3 + shift)
        reg.gauge("m.headline_ms").set(10.0 * (shift + 1))
        for x in _samples(origin, n=200):
            reg.quantile("m.latency_ms").observe(x + shift)
            reg.welford("m.level_dbm").observe(x - shift)
            reg.histogram("m.rtt_ms", [0.0, 50.0, 100.0]).observe(x)
        return reg

    def test_merge_is_order_independent_and_associative(self):
        snaps = [self._registry(f"exp:{i}", i).snapshot() for i in range(6)]
        reference = _canon(merge_snapshots(snaps))
        shuffler = random.Random(7)  # replint: ignore[REP001] — seeded, test-only
        for _ in range(10):
            order = snaps[:]
            shuffler.shuffle(order)
            assert _canon(merge_snapshots(order)) == reference
            pair = merge_snapshots(order[:3])
            assert _canon(merge_snapshots([pair, merge_snapshots(order[3:])])) == reference

    def test_duplicate_origin_dedupes_conflict_raises(self):
        snap = self._registry("exp:0", 0).snapshot()
        assert _canon(merge_snapshots([snap, snap])) == _canon(merge_snapshots([snap]))
        other = self._registry("exp:0", 1).snapshot()
        with pytest.raises(ValueError, match="conflicting parts"):
            merge_snapshots([snap, other])

    def test_summaries_fold_deterministically(self):
        snaps = [self._registry(f"exp:{i}", i).snapshot() for i in range(3)]
        merged = merge_snapshots(snaps)
        counter = summarize_entry(merged["metrics"]["m.events_count"])
        assert counter["value"] == pytest.approx(3 + 4 + 5)
        gauge = summarize_entry(merged["metrics"]["m.headline_ms"])
        assert gauge["value"] == pytest.approx(30.0)  # greatest origin exp:2
        quantile = summarize_entry(merged["metrics"]["m.latency_ms"])
        assert quantile["count"] == 600
        assert quantile["p50"] == pytest.approx(51.0, abs=4.0)


class TestExport:
    def _snapshot(self):
        reg = MetricRegistry(origin="exp:7")
        reg.gauge("e.headline_ms").set(42.0)
        for x in _samples("export", n=100):
            reg.quantile("e.latency_ms").observe(x)
        reg.counter("e.events_count").inc(5)
        reg.histogram("e.rtt_ms", [0.0, 50.0, 100.0]).observe(25.0)
        for x in (1.0, 2.0, 3.0):
            reg.welford("e.level_dbm").observe(x)
        return merge_snapshots([reg.snapshot()])

    def test_jsonl_round_trip_is_identity(self, tmp_path):
        snapshot = self._snapshot()
        path = tmp_path / "m.jsonl"
        count = write_jsonl(snapshot, str(path))
        assert count == 5
        assert _canon(load_snapshot(str(path))) == _canon(snapshot)

    def test_jsonl_lines_have_header_and_summaries(self):
        lines = [json.loads(line) for line in to_jsonl_lines(self._snapshot())]
        assert lines[0]["kind"] == "header" and lines[0]["tool"] == "repro.metrics"
        assert lines[0]["metrics"] == 5
        for record in lines[1:]:
            assert {"name", "kind", "parts", "summary"} <= set(record)

    def test_prometheus_exposition_shape(self):
        text = "\n".join(to_prometheus_lines(self._snapshot()))
        assert "# TYPE e_events_count counter" in text
        assert "# TYPE e_headline_ms gauge" in text
        assert 'e_latency_ms{quantile="0.5"}' in text
        assert 'e_rtt_ms_bucket{le="+Inf"} 1' in text
        assert "e_level_dbm_stddev" in text
        # Non-finite sentinels never leak into values; the only +Inf is the
        # histogram's closing bucket label.
        assert text.count("+Inf") == 1

    def test_load_rejects_empty_and_truncated(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty metrics file"):
            load_snapshot(str(empty))
        trunc = tmp_path / "trunc.jsonl"
        trunc.write_text('{"kind": "header", "tool": "repro.metrics"}\n{"name": "x"')
        with pytest.raises(ValueError, match="truncated or malformed"):
            load_snapshot(str(trunc))

    def test_diff_tolerance_and_missing(self):
        a = self._snapshot()
        b = json.loads(json.dumps(a))
        assert diff_snapshots(a, b) == []
        b["metrics"]["e.headline_ms"]["parts"]["exp:7"] = [1, 44.0]
        deltas = diff_snapshots(a, b, tolerance=0.10)
        assert deltas == []  # ~4.5% drift is inside 10%
        deltas = diff_snapshots(a, b, tolerance=0.01)
        assert [(d.name, d.field) for d in deltas] == [("e.headline_ms", "value")]
        del b["metrics"]["e.events_count"]
        missing = [d for d in diff_snapshots(a, b, tolerance=1.0) if d.missing]
        assert missing[0].name == "e.events_count"


class TestMetricsCli:
    def _export(self, tmp_path):
        path = tmp_path / "m.jsonl"
        reg = MetricRegistry(origin="exp:7")
        reg.gauge("c.headline_ms").set(1.5)
        write_jsonl(merge_snapshots([reg.snapshot()]), str(path))
        return path

    def test_show_and_export(self, tmp_path, capsys):
        path = self._export(tmp_path)
        assert main(["metrics", "show", str(path)]) == 0
        assert "c.headline_ms" in capsys.readouterr().out
        out = tmp_path / "m.prom"
        assert main(["metrics", "export", str(path), str(out)]) == 0
        assert "c_headline_ms 1.5" in out.read_text()

    def test_diff_exit_codes(self, tmp_path, capsys):
        path = self._export(tmp_path)
        assert main(["metrics", "diff", str(path), str(path)]) == 0
        other = tmp_path / "n.jsonl"
        reg = MetricRegistry(origin="exp:8")
        reg.gauge("c.headline_ms").set(9.9)
        write_jsonl(merge_snapshots([reg.snapshot()]), str(other))
        assert main(["metrics", "diff", str(path), str(other)]) == 1
        assert main(["metrics", "diff", str(path), str(other), "--tolerance", "10"]) == 0
        capsys.readouterr()

    def test_load_failures_exit_1(self, tmp_path, capsys):
        assert main(["metrics", "show", str(tmp_path / "nope.jsonl")]) == 1
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["metrics", "show", str(empty)]) == 1
        err = capsys.readouterr().err
        assert "no such file" in err and "empty metrics file" in err


class TestCampaignMergeProperty:
    """Per-worker registries merge order-independently to the serial snapshot."""

    def _experiment_names(self):
        if os.environ.get("REPRO_FULL_METRICS_SWEEP") == "1":
            return list(EXPERIMENTS)
        return KPI_CHEAP

    def test_shuffled_merges_equal_serial_registry(self):
        names = self._experiment_names()
        outcomes = run_campaign(names, seed=7, parallel=1, cache=None)
        serial = _canon(merged_metrics(outcomes))
        snaps = [o.record.metrics for o in outcomes]
        shuffler = random.Random(13)  # replint: ignore[REP001] — seeded, test-only
        for _ in range(8):
            order = snaps[:]
            shuffler.shuffle(order)
            assert _canon(merge_snapshots(order)) == serial
        # KPI helpers actually fired: the cheap subset registers gauges.
        merged = merged_metrics(outcomes)
        assert any(name.startswith("fig22.") for name in merged["metrics"])

    def test_rerun_is_byte_identical(self):
        first = run_campaign(KPI_CHEAP, seed=7, parallel=1, cache=None)
        second = run_campaign(KPI_CHEAP, seed=7, parallel=1, cache=None)
        assert _canon(merged_metrics(first)) == _canon(merged_metrics(second))


class TestBench:
    def test_payload_shape_and_kpis(self):
        payload = bench_payload(["fig13", "fig22"], seed=7, date="2026-01-01")
        assert payload["tool"] == "repro.bench"
        assert payload["date"] == "2026-01-01"
        assert payload["calibration_s"] > 0
        exp = payload["experiments"]["fig22"]
        assert exp["wall_time_norm"] == pytest.approx(
            exp["wall_time_s"] / payload["calibration_s"]
        )
        assert "fig22.energy_per_bit.5g.t5_nj" in exp["kpis"]
        assert "fig13.rtt.5g.paths_ms/p50" in payload["experiments"]["fig13"]["kpis"]

    def _payload(self):
        return {
            "experiments": {
                "fig13": {
                    "wall_time_norm": 10.0,
                    "kpis": {"fig13.rtt_gap.mean_ms": 20.0},
                }
            }
        }

    def test_gate_passes_within_tolerance(self):
        base = self._payload()
        new = json.loads(json.dumps(base))
        new["experiments"]["fig13"]["wall_time_norm"] = 11.5  # +15%
        new["experiments"]["fig13"]["kpis"]["fig13.rtt_gap.mean_ms"] = 21.0  # +5%
        assert compare_payloads(new, base) == []

    def test_gate_fails_on_2x_slowdown(self):
        base = self._payload()
        new = json.loads(json.dumps(base))
        new["experiments"]["fig13"]["wall_time_norm"] = 20.0
        regressions = compare_payloads(new, base)
        assert [r.field for r in regressions] == ["wall_time_norm"]

    def test_wall_gate_skipped_below_noise_floor(self):
        # A 3 ms experiment jitters >20% run to run from timer noise alone;
        # the wall gate must not flake on it. KPIs stay gated regardless.
        base = self._payload()
        base["experiments"]["fig13"]["wall_time_s"] = 0.003
        new = json.loads(json.dumps(base))
        new["experiments"]["fig13"]["wall_time_norm"] = 20.0
        assert compare_payloads(new, base) == []
        assert [r.field for r in compare_payloads(new, base, min_wall_s=0.001)] == [
            "wall_time_norm"
        ]
        new["experiments"]["fig13"]["kpis"]["fig13.rtt_gap.mean_ms"] = 99.0
        assert [r.field for r in compare_payloads(new, base)] == [
            "fig13.rtt_gap.mean_ms"
        ]

    def test_gate_fails_on_kpi_drift_and_missing(self):
        base = self._payload()
        new = json.loads(json.dumps(base))
        new["experiments"]["fig13"]["kpis"]["fig13.rtt_gap.mean_ms"] = 26.0
        assert [r.field for r in compare_payloads(new, base)] == [
            "fig13.rtt_gap.mean_ms"
        ]
        del new["experiments"]["fig13"]
        missing = compare_payloads(new, base)
        assert missing[0].limit == "experiment missing from new point"
