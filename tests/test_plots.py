"""Tests for the terminal plotting helpers."""

import pytest

from repro.analysis.plots import bar_chart, cdf_plot, heatmap, timeseries_plot


class TestCdfPlot:
    def test_renders_axes_and_legend(self):
        out = cdf_plot({"5G": [1, 2, 3], "4G": [2, 4, 6]}, title="RTT", unit="ms")
        assert "RTT" in out
        assert "o=5G" in out and "x=4G" in out
        assert "1.00 |" in out and "0.00 |" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cdf_plot({})

    def test_single_series(self):
        out = cdf_plot({"a": [1.0, 1.0, 1.0]})
        assert "o=a" in out

    def test_grid_dimensions(self):
        out = cdf_plot({"a": list(range(10))}, width=30, height=6)
        plot_rows = [line for line in out.splitlines() if "|" in line]
        assert len(plot_rows) == 6


class TestTimeseriesPlot:
    def test_renders(self):
        pts = [(t / 10, t**2) for t in range(20)]
        out = timeseries_plot(pts, title="cwnd")
        assert "cwnd" in out
        assert "*" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            timeseries_plot([])

    def test_constant_series(self):
        out = timeseries_plot([(0.0, 5.0), (1.0, 5.0)])
        assert "*" in out


class TestBarChart:
    def test_proportional_bars(self):
        out = bar_chart({"small": 1.0, "big": 10.0}, width=20)
        lines = {line.split("|")[0].strip(): line for line in out.splitlines()}
        assert lines["big"].count("#") > lines["small"].count("#")

    def test_values_shown(self):
        out = bar_chart({"x": 42.0}, unit="J")
        assert "42" in out and "J" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})

    def test_zero_values(self):
        out = bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in out


class TestHeatmap:
    def test_renders_scale(self):
        samples = [(x * 10.0, y * 10.0, float(x + y)) for x in range(10) for y in range(10)]
        out = heatmap(samples, width_m=100.0, height_m=100.0, cols=20, rows=10)
        assert "scale:" in out

    def test_stronger_samples_darker(self):
        samples = [(10.0, 10.0, 0.0), (90.0, 90.0, 100.0)]
        out = heatmap(samples, 100.0, 100.0, cols=10, rows=10)
        body = "\n".join(out.splitlines()[:-1])
        assert "@" in body  # the strongest glyph appears
        assert "." in body  # and the weakest non-empty one

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            heatmap([], 10.0, 10.0)
