"""Tests for repro.audit: ledgers, probes, flight recorder, CLI, watchdog.

The integration tests lean on the cheapest DES experiments that build
fresh links/transports per run (fig11, and fig7/remedy-comparison at
reduced duration), so the conservation ledgers are exercised against
real traffic without paying for the full catalogue workloads.
"""

import json
import pickle
import time

import pytest

from repro.audit import (
    NULL_AUDITOR,
    AuditError,
    Auditor,
    auditing,
    audits_enabled,
    current,
    diff_audits,
    dump_basename,
    install,
    load_audit,
    summary_table,
    uninstall,
    violations_table,
    write_jsonl,
)
from repro.cli import main
from repro.experiments.registry import EXPERIMENTS
from repro.metrics.core import collecting, fold_metric_name
from repro.net import Packet
from repro.qdisc import CakeQueue, CoDelQueue, FqCodelQueue
from repro.runner import ExperimentFailure, execute_experiment, run_campaign, scan_stalls
from repro.runner.instrument import instrumented_call
from repro.scenario import resolve_scenario


def pkt(size_bytes=1448, flow_id=1, host_id=None):
    meta = {} if host_id is None else {"host_id": host_id}
    return Packet(flow_id, "data", size_bytes, meta=meta)


class TestAuditorCore:
    def test_ring_wraparound_keeps_newest(self):
        auditor = Auditor(capacity=4)
        for i in range(7):
            auditor.note("audit.test.tick_count", float(i), i=i)
        records = auditor.records()
        assert [r.time_s for r in records] == [3.0, 4.0, 5.0, 6.0]
        stats = auditor.stats()
        assert stats.notes == 7
        assert stats.dropped == 3

    def test_violations_survive_ring_eviction(self):
        auditor = Auditor(capacity=2)
        auditor.flag("audit.test.residual_pkts", 0.5, residual=1)
        for i in range(10):
            auditor.note("audit.test.tick_count", float(i))
        assert all(r.kind == "note" for r in auditor.records())
        assert [v.name for v in auditor.violations()] == ["audit.test.residual_pkts"]
        assert auditor.violation_count == 1

    def test_probe_pass_is_free_fail_flags(self):
        auditor = Auditor()
        assert auditor.probe("audit.test.bounds_pkts", True, 1.0)
        assert auditor.records() == []
        assert not auditor.probe("audit.test.bounds_pkts", False, 2.0, occupancy=-1)
        assert auditor.violation_count == 1
        assert auditor.stats().checks == 2

    def test_observe_accumulates_and_flags_beyond_tol(self):
        auditor = Auditor()
        auditor.observe("audit.test.dwell_residual_s", 0.25, 1.0, tol=0.5)
        auditor.observe("audit.test.dwell_residual_s", 0.25, 2.0, tol=0.5)
        assert auditor.ledger_totals() == {"audit.test.dwell_residual_s": 0.5}
        assert auditor.violation_count == 0
        auditor.observe("audit.test.dwell_residual_s", 0.75, 3.0, tol=0.5)
        assert auditor.violation_count == 1

    def test_checkpoint_sums_watches_per_name_in_order(self):
        auditor = Auditor()
        auditor.watch("audit.b.residual_pkts", lambda: 1.0)
        auditor.watch("audit.a.residual_pkts", lambda: 0.0)
        auditor.watch("audit.b.residual_pkts", lambda: 2.0)
        totals = auditor.checkpoint("run-end", 9.0)
        assert totals == {"audit.b.residual_pkts": 3.0, "audit.a.residual_pkts": 0.0}
        # Notes follow registration order, not alphabetical order.
        assert [r.name for r in auditor.records() if r.kind == "note"] == [
            "audit.b.residual_pkts", "audit.a.residual_pkts",
        ]
        assert auditor.violation_count == 1  # only the nonzero ledger flags

    def test_checkpoint_tolerance(self):
        auditor = Auditor()
        auditor.watch("audit.test.residual_s", lambda: 1e-9, tol=1e-6)
        auditor.checkpoint("run-end")
        assert auditor.violation_count == 0

    def test_assert_clean(self, tmp_path):
        auditor = Auditor()
        auditor.assert_clean("fig0 seed 7")  # no violations: no raise
        auditor.flag("audit.test.residual_pkts", 0.5, residual=3)
        with pytest.raises(AuditError, match="1 audit violation") as excinfo:
            auditor.assert_clean("fig0 seed 7", dump_path=str(tmp_path / "d.jsonl"))
        assert excinfo.value.violations[0].name == "audit.test.residual_pkts"
        assert excinfo.value.dump_path.endswith("d.jsonl")

    def test_clear_keeps_watches(self):
        auditor = Auditor()
        auditor.watch("audit.test.residual_pkts", lambda: 0.0)
        auditor.note("audit.test.tick_count", 0.0)
        auditor.clear()
        assert auditor.records() == []
        assert auditor.stats().emitted == 0
        assert auditor.checkpoint("again") == {"audit.test.residual_pkts": 0.0}

    def test_export_kpis_silent_without_activity(self):
        auditor = Auditor()
        with collecting() as registry:
            auditor.export_kpis(registry)
        assert registry.snapshot()["metrics"] == {}

    def test_export_kpis_publishes_counts_and_ledgers(self):
        auditor = Auditor()
        auditor.watch("audit.test.residual_pkts", lambda: 2.0)
        auditor.checkpoint("run-end")
        with collecting() as registry:
            auditor.export_kpis(registry)
        assert registry.counter("audit.checks_count").value == 1.0
        assert registry.counter("audit.violations_count").value == 1.0
        assert registry.gauge("audit.test.residual_pkts").value == 2.0


class TestInstallStack:
    def test_default_is_null_auditor(self):
        assert current() is NULL_AUDITOR
        assert not current().enabled
        assert current().probe("audit.x.bounds_pkts", False, 0.0) is False
        assert current().checkpoint("end") == {}

    def test_install_uninstall_validation(self):
        auditor = install(Auditor())
        assert current() is auditor
        with pytest.raises(RuntimeError, match="different auditor"):
            uninstall(Auditor())
        uninstall(auditor)
        assert current() is NULL_AUDITOR
        with pytest.raises(RuntimeError, match="no auditor installed"):
            uninstall()

    def test_auditing_context_nests(self):
        with auditing() as outer:
            with auditing() as inner:
                assert current() is inner
            assert current() is outer
        assert current() is NULL_AUDITOR

    def test_audits_enabled_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_AUDIT", raising=False)
        assert audits_enabled()
        monkeypatch.setenv("REPRO_NO_AUDIT", "1")
        assert not audits_enabled()


class TestExport:
    def _auditor(self):
        auditor = Auditor()
        auditor.note("audit.test.tick_count", 0.25, phase="start")
        auditor.flag("audit.test.residual_pkts", 0.5, residual=2)
        auditor.probe("audit.test.bounds_pkts", True, 0.75)
        return auditor

    def test_round_trip(self, tmp_path):
        auditor = self._auditor()
        path = tmp_path / "run.audit.jsonl"
        write_jsonl(auditor, str(path), meta={"experiment": "fig0", "seed": 7})
        header, events = load_audit(str(path))
        assert header["tool"] == "repro.audit"
        assert header["notes"] == 1
        assert header["violations"] == 1
        assert header["checks"] == 1
        assert header["meta"] == {"experiment": "fig0", "seed": 7}
        assert events == auditor.records()
        assert events[1].kind == "violation"
        assert dict(events[1].args) == {"residual": 2}

    def test_dump_is_byte_deterministic(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_jsonl(self._auditor(), str(a))
        write_jsonl(self._auditor(), str(b))
        assert a.read_bytes() == b.read_bytes()

    def test_dump_basename(self):
        assert dump_basename("fig11", 7) == "fig11-seed7.audit.jsonl"

    def test_load_rejects_empty_and_malformed(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty audit file"):
            load_audit(str(empty))
        garbage = tmp_path / "garbage.jsonl"
        garbage.write_text("{not json\n")
        with pytest.raises(ValueError, match="truncated or malformed"):
            load_audit(str(garbage))
        headerless = tmp_path / "headerless.jsonl"
        headerless.write_text(
            json.dumps({"kind": "note", "name": "x", "time_s": 0.0, "args": {}}) + "\n"
        )
        with pytest.raises(ValueError, match="no header"):
            load_audit(str(headerless))


class TestAnalysis:
    def test_summary_table_aggregates_by_name(self, tmp_path):
        auditor = Auditor()
        auditor.note("audit.test.tick_count", 0.0)
        auditor.note("audit.test.tick_count", 2.0)
        auditor.flag("audit.test.residual_pkts", 1.0, residual=4)
        path = tmp_path / "run.audit.jsonl"
        write_jsonl(auditor, str(path))
        header, events = load_audit(str(path))
        rendered = summary_table(header, events).render()
        assert "audit.test.tick_count" in rendered
        assert "1 violation(s)" in rendered
        # Violations sort ahead of notes regardless of name order.
        assert rendered.index("residual_pkts") < rendered.index("tick_count")

    def test_violations_table(self):
        auditor = Auditor()
        auditor.note("audit.test.tick_count", 0.0)
        auditor.flag("audit.test.residual_pkts", 1.0, residual=4)
        rendered = violations_table(auditor.records()).render()
        assert "residual_pkts" in rendered
        assert "tick_count" not in rendered

    def test_diff_identical_and_divergent(self, tmp_path):
        a = Auditor()
        a.note("audit.test.tick_count", 0.0, i=1)
        path_a = tmp_path / "a.jsonl"
        write_jsonl(a, str(path_a))
        same = diff_audits(load_audit(str(path_a)), load_audit(str(path_a)))
        assert same.identical
        b = Auditor()
        b.note("audit.test.tick_count", 0.0, i=2)
        path_b = tmp_path / "b.jsonl"
        write_jsonl(b, str(path_b))
        diff = diff_audits(load_audit(str(path_a)), load_audit(str(path_b)))
        assert not diff.identical
        assert "audit.test.tick_count" in diff.table().render()


class TestOccupancyResidual:
    def _churn(self, q, n=48):
        """Enqueue bursts from colliding flows/hosts, dequeue late enough
        to engage the CoDel control law; returns (dequeued, dequeued_bytes)."""
        deq = deq_bytes = 0
        now = 0.0
        for round_no in range(6):
            for i in range(n // 6):
                q.enqueue(
                    pkt(size_bytes=500 + 97 * i, flow_id=i, host_id=i % 3), now
                )
            now += 0.25  # every queued packet is far beyond target sojourn
            for _ in range(n // 8):
                packet = q.dequeue(now)
                if packet is not None:
                    deq += 1
                    deq_bytes += packet.size_bytes
                assert q.occupancy_residual() == (0, 0)
        while True:
            now += 0.25
            packet = q.dequeue(now)
            if packet is None:
                break
            deq += 1
            deq_bytes += packet.size_bytes
        assert q.occupancy_residual() == (0, 0)
        return deq, deq_bytes

    def _assert_conserved(self, q, deq, deq_bytes):
        stats = q.stats
        assert stats.aqm_drops > 0, "churn never engaged the control law"
        assert stats.enqueued - deq - stats.aqm_drops == q.occupancy
        assert (
            stats.enqueued_bytes - deq_bytes - stats.aqm_dropped_bytes
            == q.occupancy_bytes
        )

    def test_codel_books_match_recount_under_churn(self):
        q = CoDelQueue(capacity_packets=64)
        self._assert_conserved(q, *self._churn(q))

    def test_fq_codel_books_match_recount_under_flow_collisions(self):
        # flows_count=1: every flow hashes into one bucket.
        q = FqCodelQueue(capacity_packets=64, flows_count=1)
        self._assert_conserved(q, *self._churn(q))

    def test_cake_books_match_recount_under_triple_collisions(self):
        # hosts_count=1 and flows_count=1: the triple-isolate DRR
        # degenerates to a single host/flow bucket shared by all traffic.
        q = CakeQueue(
            shaper_rate_bps=1e9, capacity_packets=64, flows_count=1, hosts_count=1
        )
        self._assert_conserved(q, *self._churn(q))

    def test_injected_leak_breaks_flow_conservation_not_occupancy(self, monkeypatch):
        monkeypatch.setattr(CoDelQueue, "_fault_leak_every", 3)
        q = CoDelQueue(capacity_packets=64)
        deq, _ = self._churn(q)
        # The fault silently discards queued packets: structure and books
        # move together (occupancy_residual stays zero) but the flow
        # ledger — what the link-level audit watch recomputes — breaks.
        assert q.occupancy_residual() == (0, 0)
        assert q.stats.enqueued - deq - q.stats.aqm_drops != q.occupancy


class TestLedgersOnRealRuns:
    def test_fig11_ledgers_all_zero(self):
        with auditing() as auditor:
            EXPERIMENTS["fig11"].run(7)
            totals = auditor.checkpoint("run-end")
        assert totals, "fig11 registered no conservation ledgers"
        assert auditor.violation_count == 0
        assert all(v == 0 for v in totals.values())
        assert any(name.endswith("_bytes") for name in totals)
        assert any(name.startswith("audit.link.") for name in totals)

    def test_audited_vs_unaudited_fig7_byte_identical(self):
        with auditing() as auditor:
            audited = EXPERIMENTS["fig7"].run(7, duration_s=1.0)
            auditor.checkpoint("run-end")
        assert auditor.violation_count == 0
        plain = EXPERIMENTS["fig7"].run(7, duration_s=1.0)
        assert pickle.dumps(audited) == pickle.dumps(plain)

    def test_audited_vs_unaudited_remedy_comparison_byte_identical(self):
        with auditing() as auditor:
            audited = EXPERIMENTS["remedy-comparison"].run(7, duration_s=1.5)
            auditor.checkpoint("run-end")
        assert auditor.violation_count == 0
        plain = EXPERIMENTS["remedy-comparison"].run(7, duration_s=1.5)
        assert pickle.dumps(audited) == pickle.dumps(plain)

    def test_instrumented_run_exports_audit_kpis(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_AUDIT", raising=False)
        _, record = instrumented_call("fig11", 7, lambda: EXPERIMENTS["fig11"].run(7))
        names = record.metrics["metrics"]
        assert sum(names["audit.violations_count"]["parts"].values()) == 0.0
        assert sum(names["audit.checks_count"]["parts"].values()) > 0
        assert any(name.startswith("audit.link.") for name in names)

    def test_no_audit_env_skips_kpis_and_dumps(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_NO_AUDIT", "1")
        monkeypatch.setenv("REPRO_AUDIT_DUMP", str(tmp_path))
        _, record = instrumented_call("fig11", 7, lambda: EXPERIMENTS["fig11"].run(7))
        # fig11 registers no KPIs of its own; with auditing off the
        # record must look exactly like a pre-audit one.
        assert record.metrics is None
        assert list(tmp_path.iterdir()) == []


class TestFlightRecorderOnFailure:
    def test_injected_leak_fails_run_with_readable_dump(self, monkeypatch, tmp_path, capsys):
        monkeypatch.delenv("REPRO_NO_AUDIT", raising=False)
        monkeypatch.setenv("REPRO_AUDIT_DIR", str(tmp_path))
        monkeypatch.setattr(CoDelQueue, "_fault_leak_every", 50)
        scenario = resolve_scenario("paper-nsa-codel")
        with pytest.raises(ExperimentFailure) as excinfo:
            execute_experiment("fig11", 7, None, scenario)
        failure = excinfo.value
        assert failure.name == "fig11"
        assert failure.audit_dump_path.endswith("fig11-seed7.audit.jsonl")
        assert failure.record is not None
        assert "AuditError" in failure.record.failure_traceback
        assert "flight recorder" in str(failure)
        header, events = load_audit(failure.audit_dump_path)
        violations = [e for e in events if e.kind == "violation"]
        assert violations, "the leak produced no recorded violations"
        assert any("queue_residual" in v.name for v in violations)
        # The dump is readable by the operator-facing CLI.
        assert main(["audit", "show", failure.audit_dump_path]) == 0
        assert "queue_residual" in capsys.readouterr().out
        assert main(["audit", "show", failure.audit_dump_path, "--violations"]) == 0

    def test_instrumented_call_attaches_failure_artifacts(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_NO_AUDIT", raising=False)
        monkeypatch.setenv("REPRO_AUDIT_DIR", str(tmp_path))

        def explode():
            raise ValueError("boom")

        with pytest.raises(ValueError) as excinfo:
            instrumented_call("fig0", 7, explode)
        exc = excinfo.value
        assert exc.audit_dump_path.endswith("fig0-seed7.audit.jsonl")
        assert "ValueError: boom" in exc.run_record.failure_traceback
        assert exc.run_record.audit_dump_path == exc.audit_dump_path
        header, events = load_audit(exc.audit_dump_path)
        assert any(e.name == "audit.run.exception_count" for e in events)

    def test_experiment_failure_pickles_with_artifacts(self):
        failure = ExperimentFailure(
            "fig11", "Traceback ...", record=None, audit_dump_path="/tmp/x.jsonl"
        )
        clone = pickle.loads(pickle.dumps(failure))
        assert clone.name == "fig11"
        assert clone.audit_dump_path == "/tmp/x.jsonl"
        assert "flight recorder: /tmp/x.jsonl" in str(clone)


class TestParallelIdentity:
    def test_audit_dumps_identical_across_parallel_1_2_3(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_NO_AUDIT", raising=False)
        names = ["fig11", "tab4"]
        dumps = {}
        for parallel in (1, 2, 3):
            directory = tmp_path / f"p{parallel}"
            monkeypatch.setenv("REPRO_AUDIT_DUMP", str(directory))
            run_campaign(names, seed=7, parallel=parallel, cache=None)
            dumps[parallel] = {
                name: (directory / dump_basename(name, 7)).read_bytes()
                for name in names
            }
        for name in names:
            assert dumps[1][name] == dumps[2][name] == dumps[3][name]
            header, events = load_audit(str(tmp_path / "p1" / dump_basename(name, 7)))
            assert events, f"{name} dumped an empty flight recorder"


class TestHeartbeats:
    def test_execute_experiment_stamps_heartbeats(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_AUDIT_DIR", str(tmp_path))
        _, record = execute_experiment("fig13", 7, None)
        assert 0 < record.heartbeat_started_s <= record.heartbeat_finished_s
        beats = list(tmp_path.glob("hb-*.json"))
        assert len(beats) == 1
        payload = json.loads(beats[0].read_text())
        assert payload["experiment"] == "fig13"
        assert payload["finished_mono_s"] > 0

    def test_scan_stalls(self, tmp_path):
        now = 1000.0
        (tmp_path / "hb-11.json").write_text(json.dumps(
            {"pid": 11, "experiment": "fig7", "seed": 7,
             "started_mono_s": 100.0, "finished_mono_s": 0.0}
        ))
        (tmp_path / "hb-22.json").write_text(json.dumps(
            {"pid": 22, "experiment": "fig3", "seed": 7,
             "started_mono_s": 100.0, "finished_mono_s": 130.0}
        ))
        (tmp_path / "hb-33.json").write_text("mid-write garbage")
        (tmp_path / "notes.txt").write_text("unrelated")
        stalls = scan_stalls(str(tmp_path), now, stall_timeout_s=300.0)
        assert stalls == [
            {"pid": 11, "experiment": "fig7", "seed": 7, "busy_s": 900.0}
        ]
        # A fresher run is busy, not stalled.
        assert scan_stalls(str(tmp_path), now, stall_timeout_s=1000.0) == []
        assert scan_stalls(str(tmp_path / "missing"), now, 1.0) == []


class TestAuditCli:
    def test_show_missing_file_exits_1(self, capsys):
        assert main(["audit", "show", "no/such/file.jsonl"]) == 1
        assert "no such file" in capsys.readouterr().err

    def test_show_malformed_file_exits_1(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("")
        assert main(["audit", "show", str(bad)]) == 1
        assert "empty audit file" in capsys.readouterr().err

    def test_diff_exit_codes(self, capsys, tmp_path):
        a = Auditor()
        a.note("audit.test.tick_count", 0.0, i=1)
        b = Auditor()
        b.note("audit.test.tick_count", 0.0, i=2)
        path_a, path_b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_jsonl(a, str(path_a))
        write_jsonl(b, str(path_b))
        assert main(["audit", "diff", str(path_a), str(path_a)]) == 0
        capsys.readouterr()
        assert main(["audit", "diff", str(path_a), str(path_b)]) == 1

    def test_stalls_exit_codes(self, capsys, tmp_path):
        assert main(["audit", "stalls", str(tmp_path / "missing")]) == 1
        assert "no heartbeat directory" in capsys.readouterr().err
        assert main(["audit", "stalls", str(tmp_path)]) == 0
        assert "no stalled workers" in capsys.readouterr().out
        (tmp_path / "hb-11.json").write_text(json.dumps(
            {"pid": 11, "experiment": "fig7", "seed": 7,
             "started_mono_s": time.monotonic() - 500.0, "finished_mono_s": 0.0}
        ))
        assert main(["audit", "stalls", str(tmp_path), "--stall-timeout", "300"]) == 1
        assert "stalled on 'fig7'" in capsys.readouterr().out


class TestFoldMetricName:
    def test_folds_to_metric_charset(self):
        assert fold_metric_name("Wired-Bottleneck Link") == "wired_bottleneck_link"
        assert fold_metric_name("ran", prefix="audit.link") == "audit.link.ran"

    def test_already_clean_names_pass_through(self):
        assert fold_metric_name("audit.link.ran.queue_residual_pkts") == (
            "audit.link.ran.queue_residual_pkts"
        )
