"""Tests for the energy subsystem: DRX machine, models, traces, pwrStrip."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy import (
    FILE_CAPACITIES,
    LTE_DRX_CONFIG,
    LTE_POWER,
    NR_NSA_DRX_CONFIG,
    NR_POWER,
    VIDEO_CAPACITIES,
    WEB_CAPACITIES,
    DrxConfig,
    RadioEnergyModel,
    Transfer,
    WorkloadCapacities,
    app_power_breakdown,
    energy_per_bit,
    file_transfer_trace,
    sample_timeline,
    simulate_dynamic_switch,
    simulate_lte,
    simulate_nr_nsa,
    simulate_nr_oracle,
    video_telephony_trace,
    web_browsing_trace,
)
from repro.core.rng import default_rng
from repro.energy.power_model import APP_CATALOG


class TestDrxConfig:
    def test_paper_tab7_timers(self):
        assert LTE_DRX_CONFIG.paging_cycle_s == pytest.approx(1.280)
        assert LTE_DRX_CONFIG.on_duration_s == pytest.approx(0.010)
        assert LTE_DRX_CONFIG.promotion_s == pytest.approx(0.623)
        assert LTE_DRX_CONFIG.long_drx_cycle_s == pytest.approx(0.320)
        assert LTE_DRX_CONFIG.tail_s == pytest.approx(10.720)
        assert NR_NSA_DRX_CONFIG.tail_s == pytest.approx(21.440)
        assert NR_NSA_DRX_CONFIG.promotion_s == pytest.approx(1.681)

    def test_nr_tail_double_of_lte(self):
        assert NR_NSA_DRX_CONFIG.tail_s == pytest.approx(2 * LTE_DRX_CONFIG.tail_s)

    def test_validation(self):
        with pytest.raises(ValueError):
            DrxConfig(on_duration_s=1.0, long_drx_cycle_s=0.5)
        with pytest.raises(ValueError):
            DrxConfig(promotion_s=0.0)


class TestPowerProfiles:
    def test_nr_hungrier_in_every_state(self):
        assert NR_POWER.promotion_w > LTE_POWER.promotion_w
        assert NR_POWER.active_base_w > LTE_POWER.active_base_w
        assert NR_POWER.drx_sleep_w > LTE_POWER.drx_sleep_w
        assert NR_POWER.idle_paging_w > LTE_POWER.idle_paging_w

    def test_active_power_grows_with_rate(self):
        assert NR_POWER.active_w(880e6) > NR_POWER.active_w(100e6)

    def test_drx_average_between_sleep_and_on(self):
        avg = NR_POWER.drx_average_w(NR_NSA_DRX_CONFIG)
        assert NR_POWER.drx_sleep_w < avg < NR_POWER.drx_on_w

    def test_idle_average_near_sleep(self):
        avg = LTE_POWER.idle_average_w(LTE_DRX_CONFIG)
        assert avg < 0.05  # paging duty cycle is tiny


class TestTransfer:
    def test_validation(self):
        with pytest.raises(ValueError):
            Transfer(start_s=0.0, size_bytes=0)
        with pytest.raises(ValueError):
            Transfer(start_s=-1.0, size_bytes=100)


class TestRadioEnergyModel:
    @pytest.fixture()
    def model(self):
        return RadioEnergyModel(LTE_POWER, LTE_DRX_CONFIG, capacity_bps=100e6)

    def test_single_transfer_timeline(self, model):
        result = model.replay([Transfer(0.0, int(100e6 / 8))])  # 1 s of data
        states = [seg.state for seg in result.segments]
        assert states[0] == "promotion"
        assert "active" in states
        assert "tail-drx" in states
        assert states[-1] == "idle"

    def test_energy_positive_and_additive(self, model):
        result = model.replay([Transfer(0.0, 10_000_000)])
        assert result.total_energy_j > 0
        assert result.total_energy_j == pytest.approx(
            sum(result.energy_by_state().values())
        )

    def test_timeline_contiguous(self, model):
        result = model.replay(web_browsing_trace(num_pages=4, rng=default_rng(0)))
        for a, b in zip(result.segments, result.segments[1:]):
            assert b.start_s == pytest.approx(a.end_s)

    def test_rate_hint_caps_rate(self, model):
        capped = model.replay([Transfer(0.0, 10_000_000, rate_hint_bps=10e6)])
        uncapped = model.replay([Transfer(0.0, 10_000_000)])
        assert capped.completion_s > uncapped.completion_s

    def test_short_gap_stays_in_continuous_mode(self, model):
        # The second burst lands ~70 ms after the first finishes
        # (promotion 0.623 s + 10 ms transfer): within the inactivity window.
        transfers = [Transfer(0.0, 125_000), Transfer(0.70, 125_000)]
        result = model.replay(transfers)
        states = [seg.state for seg in result.segments]
        assert "inactivity" in states
        assert states.count("promotion") == 1

    def test_long_gap_pays_second_promotion(self, model):
        transfers = [Transfer(0.0, 125_000), Transfer(30.0, 125_000)]
        result = model.replay(transfers)
        states = [seg.state for seg in result.segments]
        assert states.count("promotion") == 2

    def test_empty_trace_rejected(self, model):
        with pytest.raises(ValueError):
            model.replay([])

    def test_power_at_lookup(self, model):
        result = model.replay([Transfer(0.0, 1_000_000)])
        assert result.power_at(result.segments[0].start_s) == pytest.approx(
            result.segments[0].power_w
        )

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_more_transfers_more_energy(self, n):
        model = RadioEnergyModel(LTE_POWER, LTE_DRX_CONFIG, 100e6)
        small = model.replay(web_browsing_trace(num_pages=n, rng=default_rng(0)))
        big = model.replay(web_browsing_trace(num_pages=n + 1, rng=default_rng(0)))
        assert big.total_energy_j > small.total_energy_j


class TestModels:
    def test_tab4_web_shape(self):
        trace = web_browsing_trace(rng=default_rng(0))
        lte = simulate_lte(trace, WEB_CAPACITIES).total_energy_j
        nsa = simulate_nr_nsa(trace, WEB_CAPACITIES).total_energy_j
        dyn = simulate_dynamic_switch(trace, WEB_CAPACITIES).total_energy_j
        assert nsa > lte  # 5G wastes energy on light traffic
        assert dyn == pytest.approx(lte, rel=0.1)  # heuristic routes web to 4G

    def test_tab4_file_shape(self):
        trace = file_transfer_trace()
        lte = simulate_lte(trace, FILE_CAPACITIES).total_energy_j
        nsa = simulate_nr_nsa(trace, FILE_CAPACITIES).total_energy_j
        oracle = simulate_nr_oracle(trace, FILE_CAPACITIES).total_energy_j
        assert nsa < lte  # 5G's per-bit efficiency wins on bulk data
        assert oracle < nsa

    def test_tab4_video_shape(self):
        trace = video_telephony_trace(duration_s=30.0)
        lte = simulate_lte(trace, VIDEO_CAPACITIES)
        nsa = simulate_nr_nsa(trace, VIDEO_CAPACITIES)
        # Congested 4G takes far longer to move the same video bytes.
        assert lte.completion_s > 2.0 * nsa.completion_s
        assert lte.total_energy_j > nsa.total_energy_j

    def test_oracle_is_lower_bound_on_nr(self):
        for trace, caps in (
            (web_browsing_trace(rng=default_rng(0)), WEB_CAPACITIES),
            (file_transfer_trace(num_files=3), FILE_CAPACITIES),
        ):
            oracle = simulate_nr_oracle(trace, caps).total_energy_j
            nsa = simulate_nr_nsa(trace, caps).total_energy_j
            assert oracle < nsa

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            WorkloadCapacities(lte_bps=0.0, nr_bps=1e6)


class TestTraces:
    def test_web_trace_spacing(self):
        trace = web_browsing_trace(num_pages=5, think_time_s=7.0, rng=default_rng(0))
        starts = [t.start_s for t in trace]
        assert starts == pytest.approx([0.0, 7.0, 14.0, 21.0, 28.0])

    def test_video_trace_rate_hint(self):
        trace = video_telephony_trace(duration_s=10.0, rate_bps=45e6)
        assert all(t.rate_hint_bps == 45e6 for t in trace)
        total_bits = sum(t.size_bytes for t in trace) * 8
        assert total_bits == pytest.approx(45e6 * 10.0, rel=0.05)

    def test_file_trace_back_to_back(self):
        trace = file_transfer_trace(num_files=3)
        assert all(t.start_s == 0.0 for t in trace)

    def test_validation(self):
        with pytest.raises(ValueError):
            web_browsing_trace(num_pages=0, rng=default_rng(0))
        with pytest.raises(ValueError):
            video_telephony_trace(duration_s=0.0)
        with pytest.raises(ValueError):
            file_transfer_trace(num_files=0)


class TestPowerModelAndPwrstrip:
    def test_breakdown_components_sum(self):
        b = app_power_breakdown(APP_CATALOG[0], 5)
        assert b.total_w == pytest.approx(b.system_w + b.screen_w + b.app_w + b.radio_w)

    def test_5g_radio_dominates_download(self):
        b = app_power_breakdown(APP_CATALOG[-1], 5)
        assert b.radio_fraction > 0.5

    def test_unknown_generation_rejected(self):
        with pytest.raises(ValueError):
            app_power_breakdown(APP_CATALOG[0], 6)

    def test_energy_per_bit_5g_cheaper(self):
        assert energy_per_bit(5, 20.0) < 0.5 * energy_per_bit(4, 20.0)

    def test_energy_per_bit_validation(self):
        with pytest.raises(ValueError):
            energy_per_bit(5, 0.0)

    def test_pwrstrip_sampling(self):
        result = simulate_lte(web_browsing_trace(num_pages=2, rng=default_rng(0)), WEB_CAPACITIES)
        samples = sample_timeline(result)
        assert len(samples) == pytest.approx(result.end_s / 0.1, abs=2)
        times = [s.time_s for s in samples]
        assert times == sorted(times)
        assert all(s.power_w >= 0 for s in samples)

    def test_pwrstrip_device_baseline(self):
        result = simulate_lte(web_browsing_trace(num_pages=2, rng=default_rng(0)), WEB_CAPACITIES)
        bare = sample_timeline(result)
        with_device = sample_timeline(result, include_device=True)
        assert with_device[0].power_w > bare[0].power_w

    def test_pwrstrip_interval_validation(self):
        result = simulate_lte(web_browsing_trace(num_pages=1, rng=default_rng(0)), WEB_CAPACITIES)
        with pytest.raises(ValueError):
            sample_timeline(result, interval_s=0.0)
