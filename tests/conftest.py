"""Shared test configuration.

The CLI's ``run`` command caches results under ``.repro_cache/`` by
default; point it at a per-test temporary directory so the suite never
writes into the working tree.
"""

import pytest


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro_cache"))
