"""Tests for mobility: walker, measurement events, hand-off machinery."""

import numpy as np
import pytest

from repro.core import LTE_PROFILE, NR_PROFILE, RngFactory
from repro.geometry import build_campus
from repro.mobility import (
    EventThresholds,
    EventType,
    HandoffEngine,
    HandoffKind,
    HandoffProcedure,
    RouteWalker,
    classify_events,
    rsrq_gain_cdf_fraction,
)
from repro.mobility.handoff import HandoffEvent
from repro.radio import Environment, RadioNetwork


@pytest.fixture(scope="module")
def campus():
    return build_campus()


@pytest.fixture(scope="module")
def networks(campus):
    rngf = RngFactory(99)
    env = Environment(campus.buildings, rngf)
    nr = RadioNetwork.from_campus(campus, NR_PROFILE, env)
    lte = RadioNetwork.from_campus(campus, LTE_PROFILE, env)
    return nr, lte


class TestWalker:
    def test_speed_bounds_enforced(self, campus):
        with pytest.raises(ValueError):
            RouteWalker(campus, np.random.default_rng(0), speed_kmh=20.0)
        with pytest.raises(ValueError):
            RouteWalker(campus, np.random.default_rng(0), speed_kmh=1.0)

    def test_trajectory_timestamps(self, campus):
        walker = RouteWalker(campus, np.random.default_rng(0))
        traj = list(walker.trajectory(2.0, dt_s=0.5))
        times = [p.time_s for p in traj]
        assert times == pytest.approx([0.0, 0.5, 1.0, 1.5, 2.0])

    def test_positions_stay_on_campus(self, campus):
        walker = RouteWalker(campus, np.random.default_rng(1))
        for p in walker.trajectory(120.0, dt_s=1.0):
            assert -1 <= p.location.x <= campus.width_m + 1
            assert -1 <= p.location.y <= campus.height_m + 1

    def test_walker_moves(self, campus):
        walker = RouteWalker(campus, np.random.default_rng(2), speed_kmh=5.0)
        traj = list(walker.trajectory(60.0, dt_s=1.0))
        total = sum(
            a.location.distance_to(b.location) for a, b in zip(traj, traj[1:])
        )
        # ~5 km/h for 60 s is ~83 m of walking.
        assert 50 <= total <= 120

    def test_deterministic_given_rng(self, campus):
        t1 = list(RouteWalker(campus, np.random.default_rng(3)).trajectory(10.0, 1.0))
        t2 = list(RouteWalker(campus, np.random.default_rng(3)).trajectory(10.0, 1.0))
        assert [p.location for p in t1] == [p.location for p in t2]

    def test_invalid_duration(self, campus):
        walker = RouteWalker(campus, np.random.default_rng(0))
        with pytest.raises(ValueError):
            list(walker.trajectory(0.0))


class TestMeasurementEvents:
    def test_a1_on_strong_serving(self):
        events = classify_events(0.0, -7.0, -30.0)
        assert EventType.A1 in {e.event_type for e in events}

    def test_a2_on_weak_serving(self):
        events = classify_events(0.0, -22.0, -30.0)
        assert EventType.A2 in {e.event_type for e in events}

    def test_a3_neighbor_better(self):
        events = classify_events(0.0, -15.0, -10.0)
        assert EventType.A3 in {e.event_type for e in events}

    def test_a3_needs_offset(self):
        # 2 dB better is below the 3 dB offset: no A3.
        events = classify_events(0.0, -15.0, -13.5)
        assert EventType.A3 not in {e.event_type for e in events}

    def test_a5_dual_threshold(self):
        events = classify_events(0.0, -18.0, -12.0)
        assert EventType.A5 in {e.event_type for e in events}

    def test_b_events_need_inter_rat(self):
        without = classify_events(0.0, -18.0, -30.0)
        assert EventType.B1 not in {e.event_type for e in without}
        with_rat = classify_events(0.0, -18.0, -30.0, inter_rat_db=-4.0)
        kinds = {e.event_type for e in with_rat}
        assert EventType.B1 in kinds
        assert EventType.B2 in kinds

    def test_custom_thresholds(self):
        th = EventThresholds(a3_offset_db=10.0)
        events = classify_events(0.0, -15.0, -10.0, thresholds=th)
        assert EventType.A3 not in {e.event_type for e in events}


class TestHandoffProcedure:
    def test_mean_latencies_match_paper(self):
        # Sec. 3.4: 30.10 ms (4G-4G), 108.40 ms (5G-5G), 80.23 ms (4G-5G).
        assert HandoffProcedure.mean_latency_s(HandoffKind.LTE_TO_LTE) == pytest.approx(
            0.0301, abs=0.002
        )
        assert HandoffProcedure.mean_latency_s(HandoffKind.NR_TO_NR) == pytest.approx(
            0.1084, abs=0.002
        )
        assert HandoffProcedure.mean_latency_s(HandoffKind.LTE_TO_NR) == pytest.approx(
            0.0802, abs=0.002
        )

    def test_nsa_5g_handoff_3x_slower_than_4g(self):
        ratio = HandoffProcedure.mean_latency_s(
            HandoffKind.NR_TO_NR
        ) / HandoffProcedure.mean_latency_s(HandoffKind.LTE_TO_LTE)
        assert 3.0 <= ratio <= 4.0

    def test_5g5g_includes_nr_release_and_readd(self):
        proc = HandoffProcedure.draw(HandoffKind.NR_TO_NR, np.random.default_rng(0))
        names = [name for name, _ in proc.step_latencies_s]
        assert any("release" in n for n in names)
        assert any("T-gNB" in n for n in names)

    def test_draw_total_near_mean(self):
        rng = np.random.default_rng(0)
        totals = [
            HandoffProcedure.draw(HandoffKind.NR_TO_NR, rng).total_latency_s
            for _ in range(300)
        ]
        assert np.mean(totals) == pytest.approx(0.1084, rel=0.05)

    def test_draw_has_spread(self):
        rng = np.random.default_rng(0)
        totals = [
            HandoffProcedure.draw(HandoffKind.LTE_TO_LTE, rng).total_latency_s
            for _ in range(100)
        ]
        assert np.std(totals) > 0.001

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            HandoffProcedure.draw("6G-7G", np.random.default_rng(0))

    def test_latencies_positive(self):
        rng = np.random.default_rng(1)
        for kind in HandoffKind.ALL:
            proc = HandoffProcedure.draw(kind, rng)
            assert all(latency > 0 for _, latency in proc.step_latencies_s)


class TestHandoffEngine:
    @pytest.fixture(scope="class")
    def campaign(self, campus, networks):
        nr, lte = networks
        rngf = RngFactory(42)
        walker = RouteWalker(campus, rngf.stream("walk"), speed_kmh=6.0)
        engine = HandoffEngine(nr, lte, rngf.stream("ho"), measurement_noise_db=2.5)
        return engine.run(walker.trajectory(900.0, dt_s=0.108))

    def test_produces_handoffs(self, campaign):
        assert len(campaign.events) >= 5

    def test_trace_covers_walk(self, campaign):
        assert campaign.trace[0].time_s == 0.0
        assert campaign.trace[-1].time_s == pytest.approx(900.0, abs=1.0)

    def test_5g5g_slower_than_4g4g(self, campaign):
        nr_events = campaign.events_of_kind(HandoffKind.NR_TO_NR)
        lte_events = campaign.events_of_kind(HandoffKind.LTE_TO_LTE)
        if nr_events and lte_events:
            nr_lat = np.mean([e.latency_s for e in nr_events])
            lte_lat = np.mean([e.latency_s for e in lte_events])
            assert nr_lat > 2.5 * lte_lat

    def test_outages_match_events(self, campaign):
        assert len(campaign.outages) == len(campaign.events)
        for (start, end), event in zip(campaign.outages, campaign.events):
            assert start == event.time_s
            assert end - start == pytest.approx(event.latency_s)

    def test_handoff_changes_cell(self, campaign):
        for e in campaign.events:
            if e.kind in (HandoffKind.NR_TO_NR, HandoffKind.LTE_TO_LTE):
                assert e.source_pci != e.target_pci

    def test_most_handoffs_gain_quality(self, campaign):
        # Fig. 5: most, but not all, hand-offs improve RSRQ by >3 dB.
        frac = rsrq_gain_cdf_fraction(campaign.events)
        assert 0.5 <= frac < 1.0

    def test_horizontal_dominate(self, campaign):
        assert campaign.horizontal_count > campaign.vertical_count


class TestGainFraction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rsrq_gain_cdf_fraction([])

    def test_simple_fraction(self):
        events = [
            HandoffEvent(0.0, "4G-4G", 1, 2, 0.03, -15.0, -10.0),  # +5 dB
            HandoffEvent(1.0, "4G-4G", 2, 3, 0.03, -10.0, -12.0),  # -2 dB
        ]
        assert rsrq_gain_cdf_fraction(events) == 0.5
        assert events[0].rsrq_gain_db == pytest.approx(5.0)
