"""Tests for the procedural world model: generators, presets, workload.

The load-bearing check is paper-campus byte-identity: the hand-crafted
campus is now just one generator preset, and the committed golden world
file proves the refactor changed no geometry.  The property tests then
pin the invariants every generated district must satisfy — disjoint
building footprints, in-extent sites, a connected road graph — and the
cross-process test pins byte-identical regeneration from
``(seed, TopologySection)``.  The preset golden file freezes the
world-survey KPIs of the three committed districts at seed 7.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import subprocess
import sys
from functools import lru_cache
from pathlib import Path

import numpy as np
import pytest

from repro.cli import _to_jsonable
from repro.core.rng import RngFactory
from repro.experiments import world_survey
from repro.geometry import build_campus, world_to_dict
from repro.mobility.walker import MAX_SPEED_KMH, MIN_SPEED_KMH
from repro.scenario import apply_overrides, default_scenario, preset, scenario_digest
from repro.scenario.core import TopologySection
from repro.topology import generate_world, synthesize_workload, walker_for_user

REPO_ROOT = Path(__file__).resolve().parents[1]
GOLDEN_WORLD = REPO_ROOT / "tests" / "data" / "golden" / "paper_campus_world.json"
GOLDEN_PRESETS = REPO_ROOT / "tests" / "data" / "golden" / "generated_presets_seed7.json"

#: The committed generated-district presets (see repro.scenario.presets).
GENERATED_PRESETS = ("rural-sparse", "urban-canyon", "stadium-flash-crowd")

#: One grid configuration per density class / site policy pairing.
_GRID_SECTIONS = {
    "rural-hex": TopologySection(
        generator="grid", width_m=1200.0, height_m=900.0, road_pitch_m=300.0,
        road_jitter_ratio=0.2, density_class="rural", site_policy="hex-grid",
        gnb_site_count=3, enb_site_count=4,
    ),
    "suburban-roads": TopologySection(
        generator="grid", width_m=1000.0, height_m=1000.0, road_pitch_m=160.0,
        road_jitter_ratio=0.1, density_class="suburban",
        site_policy="road-following", gnb_site_count=6, enb_site_count=8,
    ),
    "canyon-hotspot": TopologySection(
        generator="grid", width_m=800.0, height_m=1400.0, road_pitch_m=120.0,
        road_jitter_ratio=0.3, density_class="urban-canyon",
        site_policy="hotspot-infill", gnb_site_count=8, enb_site_count=10,
    ),
}


def _render_world(world) -> str:
    return json.dumps(world_to_dict(world), indent=2, sort_keys=True) + "\n"


@lru_cache(maxsize=None)
def _grid_world(config: str):
    return generate_world(7, _GRID_SECTIONS[config])


class TestPaperCampusGolden:
    def test_build_campus_matches_golden_file(self):
        """The hand-crafted map is frozen byte-for-byte."""
        assert _render_world(build_campus()).encode() == GOLDEN_WORLD.read_bytes()

    def test_generator_reproduces_handcrafted_campus(self):
        """`paper-campus` is now a generator preset — and an exact one."""
        generated = generate_world(7, TopologySection())
        assert generated == build_campus()
        assert _render_world(generated).encode() == GOLDEN_WORLD.read_bytes()

    def test_paper_campus_ignores_seed(self):
        assert generate_world(1, TopologySection()) == generate_world(7, TopologySection())

    def test_extra_gnb_sites_thread_through_generator(self):
        densified = generate_world(
            7, dataclasses.replace(TopologySection(), extra_gnb_sites=3)
        )
        assert len(densified.gnb_sites) == len(build_campus().gnb_sites) + 3

    def test_extra_sites_rejected_for_grid_generator(self):
        section = dataclasses.replace(
            _GRID_SECTIONS["rural-hex"], extra_gnb_sites=2
        )
        with pytest.raises(ValueError, match="extra_gnb_sites"):
            generate_world(7, section)


class TestGeneratedWorldProperties:
    @pytest.mark.parametrize("config", sorted(_GRID_SECTIONS))
    def test_building_footprints_are_disjoint(self, config):
        buildings = list(_grid_world(config).buildings)
        for i, a in enumerate(buildings):
            for b in buildings[i + 1:]:
                assert not a.overlaps(b), f"{a.name} overlaps {b.name}"

    @pytest.mark.parametrize("config", sorted(_GRID_SECTIONS))
    def test_all_sites_inside_extent(self, config):
        world = _grid_world(config)
        for site in (*world.gnb_sites, *world.enb_sites):
            assert world.contains(site.position), site.name

    @pytest.mark.parametrize("config", sorted(_GRID_SECTIONS))
    def test_road_graph_is_connected(self, config):
        world = _grid_world(config)
        assert world.roads
        assert world.road_graph.is_connected()

    @pytest.mark.parametrize("config", sorted(_GRID_SECTIONS))
    def test_site_counts_and_co_siting(self, config):
        section = _GRID_SECTIONS[config]
        world = _grid_world(config)
        assert len(world.gnb_sites) == section.gnb_site_count
        assert len(world.enb_sites) == section.enb_site_count
        anchors = world.co_sited_enbs()
        assert len(anchors) == min(section.gnb_site_count, section.enb_site_count)

    def test_same_seed_same_world_in_process(self):
        section = _GRID_SECTIONS["suburban-roads"]
        assert _render_world(generate_world(7, section)) == _render_world(
            generate_world(7, section)
        )

    def test_different_seed_different_world(self):
        section = _GRID_SECTIONS["suburban-roads"]
        assert _render_world(generate_world(7, section)) != _render_world(
            generate_world(8, section)
        )

    def test_generation_is_byte_identical_across_processes(self):
        """The reproducibility contract: (seed, knobs) -> same bytes anywhere."""
        script = (
            "import hashlib, json;"
            "from repro.scenario.core import TopologySection;"
            "from repro.topology import generate_world;"
            "from repro.geometry import world_to_dict;"
            "section = TopologySection(generator='grid', width_m=1000.0,"
            " height_m=1000.0, road_pitch_m=160.0, road_jitter_ratio=0.1,"
            " density_class='suburban', site_policy='road-following',"
            " gnb_site_count=6, enb_site_count=8);"
            "rendered = json.dumps(world_to_dict(generate_world(7, section)),"
            " indent=2, sort_keys=True) + '\\n';"
            "print(hashlib.sha256(rendered.encode()).hexdigest())"
        )
        remote = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        ).stdout.strip()
        local = hashlib.sha256(
            _render_world(generate_world(7, _GRID_SECTIONS["suburban-roads"])).encode()
        ).hexdigest()
        assert remote == local

    def test_hotspot_policy_records_landmark(self):
        world = _grid_world("canyon-hotspot")
        assert "hotspot" in world.landmarks
        assert world.contains(world.landmarks["hotspot"])


class TestDigestKnobs:
    """Every generator/workload knob keys the runner cache."""

    @pytest.mark.parametrize(
        "override",
        [
            {"topology.generator": "grid"},
            {"topology.width_m": 640.0},
            {"topology.height_m": 1000.0},
            {"topology.road_pitch_m": 90.0},
            {"topology.road_jitter_ratio": 0.2},
            {"topology.density_class": "urban-canyon"},
            {"topology.site_policy": "road-following"},
            {"topology.gnb_site_count": 9},
            {"topology.enb_site_count": 7},
            {"workload.user_count": 99},
            {"workload.offered_load_ratio": 2.0},
            {"workload.web_mix_ratio": 0.9},
            {"workload.video_mix_ratio": 0.9},
            {"workload.file_mix_ratio": 0.9},
        ],
        ids=lambda o: next(iter(o)),
    )
    def test_digest_changes_when_knob_changes(self, override):
        base = default_scenario()
        tweaked = apply_overrides(base, override)
        assert scenario_digest(tweaked) != scenario_digest(base)


class TestPresetGoldenKpis:
    def test_generated_preset_kpis_match_golden_file(self):
        """World-survey KPIs of the three districts are frozen at seed 7."""
        payload = {
            name: _to_jsonable(world_survey.run(seed=7, scenario=name))
            for name in GENERATED_PRESETS
        }
        rendered = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        assert rendered.encode() == GOLDEN_PRESETS.read_bytes()

    def test_presets_have_distinct_worlds(self):
        digests = {
            name: hashlib.sha256(
                _render_world(generate_world(7, preset(name).topology)).encode()
            ).hexdigest()
            for name in GENERATED_PRESETS
        }
        assert len(set(digests.values())) == len(GENERATED_PRESETS)


class TestWorkloadSynthesis:
    def _population(self, scenario_name="urban-canyon", stream="test.workload"):
        scenario = preset(scenario_name)
        world = generate_world(7, scenario.topology)
        rng = RngFactory(7).stream(stream)
        return world, scenario, synthesize_workload(world, scenario.workload, rng)

    def test_population_size_and_mixes(self):
        _, scenario, population = self._population()
        assert len(population.users) == scenario.workload.user_count
        for user in population.users:
            assert user.web_ratio + user.video_ratio + user.file_ratio == pytest.approx(1.0)
            assert MIN_SPEED_KMH <= user.walk_speed_kmh <= MAX_SPEED_KMH
            assert user.offered_load_mbps > 0.0

    def test_home_roads_are_valid_indices(self):
        world, _, population = self._population()
        for user in population.users:
            assert 0 <= user.home_road_index < len(world.roads)

    def test_population_reproducible_from_stream(self):
        _, _, first = self._population()
        _, _, second = self._population()
        assert first == second

    def test_offered_load_scales_with_ratio(self):
        scenario = preset("rural-sparse")
        world = generate_world(7, scenario.topology)
        base = synthesize_workload(
            world, scenario.workload, RngFactory(7).stream("test.load")
        )
        doubled = synthesize_workload(
            world,
            dataclasses.replace(scenario.workload, offered_load_ratio=2 * scenario.workload.offered_load_ratio),
            RngFactory(7).stream("test.load"),
        )
        assert doubled.total_offered_load_mbps == pytest.approx(
            2.0 * base.total_offered_load_mbps
        )

    def test_app_mix_tracks_scenario_weights(self):
        _, scenario, population = self._population("stadium-flash-crowd")
        mix = population.app_mix()
        # stadium-flash-crowd is video-heavy (0.2/0.7/0.1 weights).
        assert mix["video"] > mix["web"] > mix["file"]

    def test_walker_for_user_moves_on_the_road_network(self):
        world, _, population = self._population()
        user = population.users[0]
        walker = walker_for_user(world, user, RngFactory(7).stream("test.walk"))
        points = list(walker.trajectory(30.0, dt_s=0.5))
        assert len(points) == 61
        start = points[0].location
        assert any(
            np.hypot(p.location.x - start.x, p.location.y - start.y) > 1.0
            for p in points
        )
