"""Unit tests for repro.radio.propagation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.rng import RngFactory
from repro.geometry import Building, BuildingMap, Point
from repro.radio.propagation import (
    Environment,
    clutter_loss_db,
    free_space_path_loss_db,
    uma_los_path_loss_db,
    uma_nlos_path_loss_db,
    wall_penetration_loss_db,
)

distances = st.floats(min_value=1.0, max_value=2000.0)
carriers = st.sampled_from([1840.0, 3500.0])


class TestPathLossFormulas:
    def test_fspl_known_value(self):
        # 1 km at 1 GHz: 32.45 + 0 + 60 = 92.45 dB.
        assert free_space_path_loss_db(1000.0, 1000.0) == pytest.approx(92.45)

    @given(distances, carriers)
    def test_nlos_at_least_los(self, d, f):
        assert uma_nlos_path_loss_db(d, f) >= uma_los_path_loss_db(d, f) - 1e-9

    @given(st.floats(min_value=1.0, max_value=1000.0), carriers)
    def test_loss_monotone_in_distance(self, d, f):
        assert uma_los_path_loss_db(d * 2, f) > uma_los_path_loss_db(d, f)
        assert uma_nlos_path_loss_db(d * 2, f) > uma_nlos_path_loss_db(d, f)

    @given(distances)
    def test_higher_frequency_attenuates_more(self, d):
        assert uma_los_path_loss_db(d, 3500.0) > uma_los_path_loss_db(d, 1840.0)

    def test_minimum_distance_clamp(self):
        assert uma_los_path_loss_db(0.0, 3500.0) == uma_los_path_loss_db(1.0, 3500.0)


class TestClutterAndWalls:
    def test_clutter_linear_in_distance(self):
        one = clutter_loss_db(100.0, 3500.0)
        two = clutter_loss_db(200.0, 3500.0)
        assert two == pytest.approx(2 * one)

    def test_clutter_frequency_ordering(self):
        assert clutter_loss_db(100.0, 3500.0) > clutter_loss_db(100.0, 1840.0)

    def test_wall_loss_frequency_ordering(self):
        # 5G's 3.5 GHz penetrates worse than 4G's 1.84 GHz (Fig. 3).
        assert wall_penetration_loss_db(3500.0) > wall_penetration_loss_db(1840.0)

    def test_wall_loss_scales_with_walls(self):
        assert wall_penetration_loss_db(3500.0, 2) == pytest.approx(
            2 * wall_penetration_loss_db(3500.0, 1)
        )

    def test_zero_walls_zero_loss(self):
        assert wall_penetration_loss_db(3500.0, 0) == 0.0

    def test_negative_walls_rejected(self):
        with pytest.raises(ValueError):
            wall_penetration_loss_db(3500.0, -1)


class TestEnvironment:
    @pytest.fixture()
    def env(self):
        buildings = BuildingMap([Building(40.0, -20.0, 60.0, 20.0)])
        return Environment(buildings, RngFactory(1))

    def test_deterministic(self, env):
        a = env.path_loss_db(Point(0, 0), Point(100, 0), 3500.0)
        b = env.path_loss_db(Point(0, 0), Point(100, 0), 3500.0)
        assert a == b

    def test_blocked_link_is_nlos(self, env):
        bd = env.breakdown(Point(0, 0), Point(100, 0), 3500.0)
        assert not bd.line_of_sight

    def test_clear_link_is_los(self, env):
        bd = env.breakdown(Point(0, 50), Point(100, 50), 3500.0)
        assert bd.line_of_sight

    def test_indoor_receiver_pays_penetration(self, env):
        bd = env.breakdown(Point(0, 0), Point(50, 0), 3500.0)
        assert bd.penetration_db > 0

    def test_outdoor_receiver_behind_building_pays_no_penetration(self, env):
        bd = env.breakdown(Point(0, 0), Point(100, 0), 3500.0)
        assert bd.penetration_db == 0.0

    def test_indoor_rx_keeps_los_class_through_own_wall(self, env):
        # The receiver's own wall must not also flip the link NLOS.
        bd = env.breakdown(Point(0, 0), Point(45, 0), 3500.0)
        assert bd.line_of_sight
        assert bd.penetration_db > 0

    def test_is_indoor(self, env):
        assert env.is_indoor(Point(50, 0))
        assert not env.is_indoor(Point(0, 0))

    def test_total_is_sum_of_parts(self, env):
        bd = env.breakdown(Point(0, 0), Point(100, 0), 3500.0)
        assert bd.total_db == pytest.approx(bd.base_db + bd.penetration_db + bd.shadowing_db)

    def test_shadowing_has_spread(self):
        env = Environment(BuildingMap(()), RngFactory(2))
        losses = [
            env.breakdown(Point(0, 0), Point(100, 100 + 50 * i), 3500.0).shadowing_db
            for i in range(20)
        ]
        assert max(losses) > min(losses)

    def test_empty_environment_defaults(self):
        env = Environment(None, RngFactory(0))
        assert env.path_loss_db(Point(0, 0), Point(100, 0), 3500.0) > 0
