"""Tests for the web browsing application model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LTE_PROFILE, NR_PROFILE
from repro.core.units import MB
from repro.apps.web import WEB_PAGE_CATALOG, WebPage, image_page, measure_plt


class TestWebPage:
    def test_catalog_has_five_categories(self):
        categories = [p.category for p in WEB_PAGE_CATALOG]
        assert categories == ["search", "image", "shopping", "map", "video"]

    def test_render_time_grows_with_size(self):
        small = WebPage("t", int(1 * MB), 0.2, 0.1, 4)
        large = WebPage("t", int(8 * MB), 0.2, 0.1, 4)
        assert large.render_time_s > small.render_time_s

    def test_image_page_sizes(self):
        assert image_page(4.0).size_bytes == 4 * MB

    def test_image_page_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            image_page(0.0)

    @given(st.floats(min_value=0.5, max_value=32.0))
    @settings(max_examples=20)
    def test_render_time_positive(self, size_mb):
        assert image_page(size_mb).render_time_s > 0


class TestMeasurePlt:
    def test_download_plus_render(self):
        plt = measure_plt(WEB_PAGE_CATALOG[0], NR_PROFILE, seed=3)
        assert plt.total_s == pytest.approx(plt.download_s + plt.render_s)
        assert plt.download_s > 0
        assert plt.render_s > 0

    def test_5g_downloads_faster(self):
        page = image_page(16.0)
        p5 = measure_plt(page, NR_PROFILE, seed=3)
        p4 = measure_plt(page, LTE_PROFILE, seed=3)
        assert p5.download_s < p4.download_s

    def test_render_is_network_independent(self):
        page = WEB_PAGE_CATALOG[2]
        p5 = measure_plt(page, NR_PROFILE, seed=3)
        p4 = measure_plt(page, LTE_PROFILE, seed=3)
        assert p5.render_s == p4.render_s

    def test_bigger_page_longer_plt(self):
        small = measure_plt(image_page(1.0), NR_PROFILE, seed=3)
        big = measure_plt(image_page(16.0), NR_PROFILE, seed=3)
        assert big.total_s > small.total_s

    def test_5g_gain_far_below_capacity_ratio(self):
        # The headline: 5x the bandwidth, nowhere near 5x faster pages.
        page = WEB_PAGE_CATALOG[0]
        p5 = measure_plt(page, NR_PROFILE, seed=3)
        p4 = measure_plt(page, LTE_PROFILE, seed=3)
        assert p4.total_s / p5.total_s < 2.0

    def test_deterministic_given_seed(self):
        page = WEB_PAGE_CATALOG[1]
        a = measure_plt(page, NR_PROFILE, seed=5)
        b = measure_plt(page, NR_PROFILE, seed=5)
        assert a.download_s == b.download_s
