"""Tests for the scenario layer: presets, digests, overrides, threading.

The heart of the suite is the golden-file check: running the default
(``paper-nsa``) scenario must reproduce the pre-scenario-layer results
byte-for-byte, so the refactor provably changed no physics.
"""

from __future__ import annotations

import json
import os
import pickle
import subprocess
import sys
import tomllib
from pathlib import Path

import pytest

from repro.cli import _to_jsonable
from repro.experiments.common import testbed
from repro.experiments.registry import EXPERIMENTS
from repro.runner import ResultCache, execute_experiment, run_sweep
from repro.scenario import (
    DEFAULT_SCENARIO_NAME,
    PRESET_NAMES,
    Scenario,
    ScenarioOverrideError,
    UnknownScenarioError,
    apply_overrides,
    default_scenario,
    dumps_toml,
    expand_sweep,
    load_scenario,
    parse_set_args,
    parse_sweep_args,
    preset,
    resolve_scenario,
    scenario_digest,
    scenario_from_mapping,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
GOLDEN = REPO_ROOT / "tests" / "data" / "golden" / "default_scenario_seed7.json"

#: The experiments pinned by the golden file (coverage, hand-off,
#: transport, latency and energy layers — one per subsystem).
GOLDEN_EXPERIMENTS = ("tab1", "fig3", "fig13", "fig22", "tab4")


class TestGoldenByteIdentity:
    def test_default_scenario_reproduces_pre_refactor_results(self):
        """The refactor's load-bearing guarantee, checked byte-for-byte.

        The golden file was captured at the commit *before* the scenario
        layer existed; the default scenario must reproduce it exactly.
        """
        payload = {
            name: _to_jsonable(EXPERIMENTS[name].run(seed=7))
            for name in GOLDEN_EXPERIMENTS
        }
        rendered = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        assert rendered.encode() == GOLDEN.read_bytes()

    def test_explicit_default_matches_implicit_none(self):
        implicit = _to_jsonable(EXPERIMENTS["tab1"].run(seed=7))
        explicit = _to_jsonable(
            EXPERIMENTS["tab1"].run(seed=7, scenario=DEFAULT_SCENARIO_NAME)
        )
        assert implicit == explicit


class TestPresets:
    def test_preset_names_and_default(self):
        assert DEFAULT_SCENARIO_NAME == "paper-nsa"
        assert DEFAULT_SCENARIO_NAME in PRESET_NAMES
        assert len(PRESET_NAMES) == 11

    def test_presets_have_distinct_digests(self):
        digests = {name: scenario_digest(preset(name)) for name in PRESET_NAMES}
        assert len(set(digests.values())) == len(PRESET_NAMES)

    def test_default_scenario_is_paper_nsa(self):
        assert default_scenario() == Scenario()
        assert not default_scenario().radio.sa_mode

    def test_unknown_preset_lists_valid_names(self):
        with pytest.raises(UnknownScenarioError) as excinfo:
            resolve_scenario("sa-modee")
        message = str(excinfo.value)
        assert "sa-modee" in message
        assert "sa-mode" in message

    def test_resolve_accepts_value_name_and_none(self):
        value = preset("dense-grid")
        assert resolve_scenario(value) is value
        assert resolve_scenario("dense-grid") == value
        assert resolve_scenario(None) == default_scenario()


class TestDigest:
    def test_digest_ignores_name(self):
        renamed = apply_overrides(default_scenario(), {})
        import dataclasses

        renamed = dataclasses.replace(renamed, name="something-else")
        assert scenario_digest(renamed) == scenario_digest(default_scenario())

    def test_digest_changes_with_content(self):
        tweaked = apply_overrides(
            default_scenario(), {"workload.sim_scale": 0.1}
        )
        assert scenario_digest(tweaked) != scenario_digest(default_scenario())

    def test_digest_stable_across_processes(self):
        """The digest keys on-disk caches shared across processes."""
        script = (
            "from repro.scenario import PRESET_NAMES, preset, scenario_digest;"
            "print(','.join(scenario_digest(preset(n)) for n in PRESET_NAMES))"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        ).stdout.strip()
        local = ",".join(scenario_digest(preset(n)) for n in PRESET_NAMES)
        assert out == local

    def test_scenarios_are_hashable_and_picklable(self):
        scenario = preset("mmwave-ish")
        assert hash(scenario) == hash(preset("mmwave-ish"))
        assert pickle.loads(pickle.dumps(scenario)) == scenario


class TestOverrides:
    def test_set_parsing_and_coercion(self):
        overrides = parse_set_args(
            ["radio.sa_mode=true", "topology.wired_hops=6",
             "workload.sim_scale=0.1", "radio.nr.name=test"]
        )
        scenario = apply_overrides(default_scenario(), overrides)
        assert scenario.radio.sa_mode is True
        assert scenario.topology.wired_hops == 6
        assert scenario.workload.sim_scale == 0.1
        assert scenario.radio.nr.name == "test"

    def test_unknown_key_lists_valid_fields(self):
        with pytest.raises(ScenarioOverrideError) as excinfo:
            apply_overrides(default_scenario(), {"radio.sa_modee": True})
        message = str(excinfo.value)
        assert "sa_modee" in message
        assert "sa_mode" in message

    def test_section_target_rejected(self):
        with pytest.raises(ScenarioOverrideError):
            apply_overrides(default_scenario(), {"radio": True})

    def test_type_mismatch_rejected(self):
        with pytest.raises(ScenarioOverrideError):
            apply_overrides(default_scenario(), {"radio.sa_mode": 3.5})

    def test_malformed_set_arg_rejected(self):
        with pytest.raises(ScenarioOverrideError):
            parse_set_args(["radio.sa_mode"])


class TestTomlRoundTrip:
    @pytest.mark.parametrize("name", PRESET_NAMES)
    def test_every_preset_round_trips_through_toml(self, name, tmp_path):
        scenario = preset(name)
        path = tmp_path / f"{name}.toml"
        path.write_text(dumps_toml(scenario))
        loaded = load_scenario(path)
        assert loaded == scenario
        assert scenario_digest(loaded) == scenario_digest(scenario)

    def test_mapping_with_base_preset(self):
        scenario = scenario_from_mapping(
            {"base": "sa-mode", "name": "custom", "topology": {"wired_hops": 6}}
        )
        assert scenario.name == "custom"
        assert scenario.radio.sa_mode is True
        assert scenario.topology.wired_hops == 6

    def test_resolve_scenario_loads_files(self, tmp_path):
        path = tmp_path / "custom.toml"
        path.write_text(dumps_toml(preset("dense-grid")))
        assert resolve_scenario(str(path)) == preset("dense-grid")

    def test_toml_parses_with_stdlib(self):
        parsed = tomllib.loads(dumps_toml(preset("fdd-nr")))
        assert parsed["radio"]["nr"]["duplex"] == "FDD"


class TestSweepExpansion:
    def test_cartesian_product_last_axis_fastest(self):
        axes = parse_sweep_args(
            ["topology.wired_hops=4,6", "radio.sa_mode=false,true"]
        )
        points = expand_sweep(default_scenario(), axes)
        assert [p[0] for p in points] == [
            {"topology.wired_hops": 4, "radio.sa_mode": False},
            {"topology.wired_hops": 4, "radio.sa_mode": True},
            {"topology.wired_hops": 6, "radio.sa_mode": False},
            {"topology.wired_hops": 6, "radio.sa_mode": True},
        ]
        assert len({scenario_digest(p[1]) for p in points}) == 4

    def test_no_axes_is_single_base_point(self):
        points = expand_sweep(default_scenario(), [])
        assert points == [({}, default_scenario())]

    def test_empty_axis_rejected(self):
        with pytest.raises(ScenarioOverrideError):
            parse_sweep_args(["radio.sa_mode="])


class TestScenarioThreading:
    def test_testbed_cached_per_scenario(self):
        default_bed = testbed(7)
        assert testbed(7) is default_bed
        assert testbed(7, "paper-nsa") is default_bed
        dense_bed = testbed(7, "dense-grid")
        assert dense_bed is not default_bed
        assert len(dense_bed.campus.gnb_sites) > len(default_bed.campus.gnb_sites)

    def test_cache_entries_distinct_per_scenario(self, tmp_path):
        """Changing the scenario misses the cache; same scenario hits it."""
        cache = ResultCache(tmp_path)
        result_default, record_default = execute_experiment(
            "tab1", 7, str(tmp_path)
        )
        assert not record_default.cached
        assert record_default.scenario_digest == scenario_digest(default_scenario())

        _, record_again = execute_experiment("tab1", 7, str(tmp_path))
        assert record_again.cached

        _, record_sa = execute_experiment(
            "tab1", 7, str(tmp_path), scenario=preset("sa-mode")
        )
        assert not record_sa.cached  # distinct digest -> distinct entry
        assert record_sa.scenario_digest == scenario_digest(preset("sa-mode"))

        stems = sorted(p.name for p in cache.root.rglob("*.pkl"))
        assert len(stems) == 2
        assert all("--scn=" in stem for stem in stems)

    def test_run_sweep_points_carry_distinct_digests(self, tmp_path):
        # 120 s and 300 s walks see different hand-off sets (2 vs 4 events),
        # so the per-point KPI snapshots must diverge.
        axes = parse_sweep_args(["workload.ho_duration_s=120,300"])
        points = run_sweep(
            ["fig6"], base=default_scenario(), axes=axes,
            cache=ResultCache(tmp_path),
        )
        assert [p.index for p in points] == [0, 1]
        assert points[0].digest != points[1].digest
        assert all(len(p.outcomes) == 1 for p in points)
        snapshots = [p.metrics() for p in points]
        assert snapshots[0] != snapshots[1]
