"""Unit tests for repro.core.rng determinism guarantees."""

from repro.core.rng import RngFactory, default_rng


class TestRngFactory:
    def test_same_seed_same_stream(self):
        a = RngFactory(42).stream("shadowing")
        b = RngFactory(42).stream("shadowing")
        assert a.random(5).tolist() == b.random(5).tolist()

    def test_different_names_differ(self):
        f = RngFactory(42)
        a = f.stream("shadowing").random(5)
        b = f.stream("traffic").random(5)
        assert a.tolist() != b.tolist()

    def test_different_seeds_differ(self):
        a = RngFactory(1).stream("x").random(5)
        b = RngFactory(2).stream("x").random(5)
        assert a.tolist() != b.tolist()

    def test_order_independence(self):
        f1 = RngFactory(7)
        first_then_second = (f1.stream("a").random(), f1.stream("b").random())
        f2 = RngFactory(7)
        second_then_first = (f2.stream("b").random(), f2.stream("a").random())
        assert first_then_second[0] == second_then_first[1]
        assert first_then_second[1] == second_then_first[0]

    def test_repeated_stream_restarts(self):
        f = RngFactory(3)
        assert f.stream("x").random() == f.stream("x").random()

    def test_child_factories_are_independent(self):
        f = RngFactory(5)
        c1 = f.child("rep1").stream("s").random(3)
        c2 = f.child("rep2").stream("s").random(3)
        assert c1.tolist() != c2.tolist()

    def test_child_is_deterministic(self):
        a = RngFactory(5).child("rep1").stream("s").random(3)
        b = RngFactory(5).child("rep1").stream("s").random(3)
        assert a.tolist() == b.tolist()

    def test_seed_property(self):
        assert RngFactory(11).seed == 11


def test_default_rng_deterministic():
    assert default_rng(9).random() == default_rng(9).random()
