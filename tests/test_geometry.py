"""Unit tests for repro.geometry: points, buildings, campus."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import (
    Building,
    BuildingMap,
    GeoPoint,
    Point,
    Segment,
    build_campus,
    haversine_km,
)

coords = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_bearing_north(self):
        assert Point(0, 0).bearing_to(Point(0, 10)) == pytest.approx(0.0)

    def test_bearing_east(self):
        assert Point(0, 0).bearing_to(Point(10, 0)) == pytest.approx(90.0)

    def test_bearing_south_west(self):
        assert Point(0, 0).bearing_to(Point(-1, -1)) == pytest.approx(225.0)

    def test_offset(self):
        assert Point(1, 2).offset(3, -1) == Point(4, 1)

    @given(coords, coords, coords, coords)
    def test_distance_symmetry(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))


class TestSegment:
    def test_length(self):
        assert Segment(Point(0, 0), Point(0, 10)).length == 10.0

    def test_interpolate_midpoint(self):
        seg = Segment(Point(0, 0), Point(10, 20))
        assert seg.interpolate(0.5) == Point(5, 10)

    def test_interpolate_bounds(self):
        seg = Segment(Point(0, 0), Point(1, 1))
        with pytest.raises(ValueError):
            seg.interpolate(1.5)

    def test_sample_includes_endpoints(self):
        pts = list(Segment(Point(0, 0), Point(0, 10)).sample(3.0))
        assert pts[0] == Point(0, 0)
        assert pts[-1] == Point(0, 10)

    def test_sample_spacing_positive(self):
        with pytest.raises(ValueError):
            list(Segment(Point(0, 0), Point(1, 1)).sample(0.0))


class TestBuilding:
    def test_contains(self):
        b = Building(0, 0, 10, 10)
        assert b.contains(Point(5, 5))
        assert not b.contains(Point(15, 5))

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Building(5, 0, 5, 10)

    def test_through_ray_crosses_two_walls(self):
        b = Building(0, 0, 10, 10)
        assert b.wall_crossings(Point(-5, 5), Point(15, 5)) == 2

    def test_ray_into_building_crosses_one_wall(self):
        b = Building(0, 0, 10, 10)
        assert b.wall_crossings(Point(-5, 5), Point(5, 5)) == 1

    def test_internal_ray_crosses_nothing(self):
        b = Building(0, 0, 10, 10)
        assert b.wall_crossings(Point(2, 2), Point(8, 8)) == 0

    def test_miss_crosses_nothing(self):
        b = Building(0, 0, 10, 10)
        assert b.wall_crossings(Point(-5, 20), Point(15, 20)) == 0

    def test_diagonal_hit(self):
        b = Building(0, 0, 10, 10)
        assert b.wall_crossings(Point(-5, -5), Point(15, 15)) == 2


class TestBuildingMap:
    def test_line_of_sight_clear(self):
        m = BuildingMap([Building(0, 0, 10, 10)])
        assert m.has_line_of_sight(Point(-5, 20), Point(15, 20))

    def test_line_of_sight_blocked(self):
        m = BuildingMap([Building(0, 0, 10, 10)])
        assert not m.has_line_of_sight(Point(-5, 5), Point(15, 5))

    def test_crossings_accumulate(self):
        m = BuildingMap([Building(0, 0, 10, 10), Building(20, 0, 30, 10)])
        assert m.wall_crossings(Point(-5, 5), Point(35, 5)) == 4

    def test_is_indoor(self):
        m = BuildingMap([Building(0, 0, 10, 10)])
        assert m.is_indoor(Point(5, 5))
        assert not m.is_indoor(Point(50, 50))

    def test_building_at(self):
        b = Building(0, 0, 10, 10, name="lab")
        m = BuildingMap([b])
        assert m.building_at(Point(5, 5)) is b
        assert m.building_at(Point(50, 50)) is None

    def test_len_and_iter(self):
        m = BuildingMap([Building(0, 0, 1, 1), Building(2, 2, 3, 3)])
        assert len(m) == 2
        assert len(list(m)) == 2


class TestGeo:
    def test_geopoint_validation(self):
        with pytest.raises(ValueError):
            GeoPoint(95.0, 0.0)
        with pytest.raises(ValueError):
            GeoPoint(0.0, 200.0)

    def test_haversine_zero(self):
        p = GeoPoint(39.9, 116.4)
        assert haversine_km(p, p) == 0.0

    def test_haversine_beijing_tianjin(self):
        # Paper Tab. 6: Beijing Unicom to Tianjin server is ~111.65 km.
        beijing = GeoPoint(39.9289, 116.3883)
        tianjin = GeoPoint(39.1422, 117.1767)
        assert haversine_km(beijing, tianjin) == pytest.approx(111.65, rel=0.02)

    def test_haversine_symmetry(self):
        a, b = GeoPoint(10, 20), GeoPoint(-30, 50)
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a))


class TestCampus:
    @pytest.fixture(scope="class")
    def campus(self):
        return build_campus()

    def test_area_matches_paper(self, campus):
        assert campus.area_km2 == pytest.approx(0.46)

    def test_gnb_density_matches_paper(self, campus):
        assert campus.gnb_density_per_km2 == pytest.approx(12.99, rel=0.02)

    def test_enb_density_matches_paper(self, campus):
        assert campus.enb_density_per_km2 == pytest.approx(28.14, rel=0.02)

    def test_cell_counts_match_tab1(self, campus):
        assert campus.cell_count("5G") == 13
        assert campus.cell_count("4G") == 34

    def test_road_length_matches_paper(self, campus):
        assert campus.road_length_km == pytest.approx(6.019, rel=0.05)

    def test_six_co_sited_anchors(self, campus):
        anchors = campus.co_sited_enbs()
        assert len(anchors) == 6
        assert all(site.power_class == "macro" for site in anchors)

    def test_non_anchor_sites_are_micro(self, campus):
        anchor_names = {s.name for s in campus.co_sited_enbs()}
        others = [s for s in campus.enb_sites if s.name not in anchor_names]
        assert len(others) == 7
        assert all(site.power_class == "micro" for site in others)

    def test_pcis_unique_per_network(self, campus):
        gnb_pcis = [sec.pci for s in campus.gnb_sites for sec in s.sectors]
        enb_pcis = [sec.pci for s in campus.enb_sites for sec in s.sectors]
        assert len(set(gnb_pcis)) == len(gnb_pcis)
        assert len(set(enb_pcis)) == len(enb_pcis)

    def test_cell_72_exists(self, campus):
        pcis = {sec.pci for s in campus.gnb_sites for sec in s.sectors}
        assert 72 in pcis

    def test_roads_inside_bounds(self, campus):
        for seg in campus.roads:
            for p in (seg.start, seg.end):
                assert 0 <= p.x <= campus.width_m
                assert 0 <= p.y <= campus.height_m

    def test_buildings_do_not_cover_roads(self, campus):
        for seg in campus.roads:
            for p in seg.sample(50.0):
                assert not campus.buildings.is_indoor(p)

    def test_sites_outdoors(self, campus):
        for site in list(campus.gnb_sites) + list(campus.enb_sites):
            assert not campus.buildings.is_indoor(site.position)
