"""Tests for the campaign runner: registry, cache, instrumentation, fan-out.

The end-to-end tests use the cheapest catalogue experiments (fig3,
fig13) so the suite demonstrates cache hit/miss and parallel-vs-serial
equivalence without paying for a heavy DES workload.
"""

import json
import pickle
import time

import pytest

from repro.cli import EXPERIMENTS as CLI_EXPERIMENTS
from repro.cli import _to_jsonable
from repro.experiments.registry import (
    EXPERIMENTS,
    ExperimentSpec,
    UnknownExperimentError,
    resolve_names,
)
from repro.runner import (
    ResultCache,
    RunRecord,
    execute_experiment,
    instrumented_call,
    run_campaign,
    source_hash,
    streams_by_worker,
)

CHEAP = ["fig3", "fig13"]


def _record(name="fig3", seed=7, **overrides):
    base = dict(
        experiment=name,
        seed=seed,
        cached=False,
        wall_time_s=1.0,
        events_scheduled=10,
        events_executed=8,
        events_cancelled=2,
        rng_streams_drawn=3,
        peak_rss_kib=1024,
        worker_pid=1,
    )
    base.update(overrides)
    return RunRecord(**base)


class TestRegistry:
    def test_cli_and_registry_share_one_catalogue(self):
        assert CLI_EXPERIMENTS is EXPERIMENTS

    def test_specs_are_complete(self):
        for name, spec in EXPERIMENTS.items():
            assert isinstance(spec, ExperimentSpec)
            assert spec.name == name
            assert callable(spec.module.run)
            assert spec.description

    def test_spec_is_not_iterable(self):
        # The legacy tuple-unpack shim is gone: specs are accessed by field.
        with pytest.raises(TypeError):
            iter(EXPERIMENTS["fig3"])

    def test_default_params_excludes_seed_and_scenario(self):
        params = EXPERIMENTS["fig16"].default_params
        assert params == {"trials": 3}
        assert EXPERIMENTS["tab4"].default_params == {}

    def test_run_forwards_known_params_and_rejects_unknown(self):
        spec = EXPERIMENTS["tab1"]
        result = spec.run(7, num_points=50)
        assert result is not None
        with pytest.raises(TypeError) as excinfo:
            spec.run(7, num_pts=50)
        assert "num_pts" in str(excinfo.value)
        assert "num_points" in str(excinfo.value)

    def test_resolve_names_dedupes_preserving_order(self):
        assert resolve_names(["fig7", "fig3", "fig7", "fig3"]) == ["fig7", "fig3"]

    def test_resolve_names_rejects_unknown(self):
        with pytest.raises(UnknownExperimentError) as excinfo:
            resolve_names(["fig3", "fig99"])
        assert "fig99" in str(excinfo.value)

    def test_resolve_all_returns_catalogue_order(self):
        assert resolve_names([], run_all=True) == list(EXPERIMENTS)
        assert resolve_names(["fig7"], run_all=True) == list(EXPERIMENTS)


class TestResultCache:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.load("fig3", 7) is None
        cache.store("fig3", 7, {"answer": 42}, _record())
        hit = cache.load("fig3", 7)
        assert hit.result == {"answer": 42}
        assert hit.record.cached  # served-from-cache copies are marked
        assert hit.record.wall_time_s == 1.0  # original provenance kept

    def test_keys_separate_by_seed_and_extra(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("fig3", 7, "seven", _record())
        cache.store("fig3", 8, "eight", _record(seed=8))
        cache.store("fig3", 7, "kwargs", _record(), extra="num_points=5")
        assert cache.load("fig3", 7).result == "seven"
        assert cache.load("fig3", 8).result == "eight"
        assert cache.load("fig3", 7, extra="num_points=5").result == "kwargs"
        assert cache.load("fig3", 9) is None

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.store("fig3", 7, "ok", _record())
        path.write_bytes(b"not a pickle")
        with pytest.warns(UserWarning, match="dropping corrupt cache entry"):
            assert cache.load("fig3", 7) is None
        assert not path.exists()

    def test_corrupt_entry_warns_and_counts(self, tmp_path):
        from repro.metrics.core import collecting

        cache = ResultCache(tmp_path)
        path = cache.store("fig3", 7, "ok", _record())
        path.write_bytes(b"not a pickle")
        with collecting() as registry:
            with pytest.warns(UserWarning, match="dropping corrupt cache entry"):
                assert cache.load("fig3", 7) is None
        assert registry.counter("cache.corrupt_dropped_count").value == 1

    def test_failed_store_leaves_no_tmp_files(self, tmp_path):
        cache = ResultCache(tmp_path)

        class Unpicklable:
            def __reduce__(self):
                raise TypeError("refuses to pickle")

        with pytest.raises(TypeError, match="refuses to pickle"):
            cache.store("fig3", 7, Unpicklable(), _record())
        strays = [p for p in tmp_path.rglob("*") if p.is_file()]
        assert strays == []  # no .tmp.<pid> debris, no partial entry
        assert cache.load("fig3", 7) is None

    def test_entries_live_under_source_hash(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.store("fig3", 7, "ok", _record())
        assert path.parent.name == source_hash()

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("fig3", 7, "a", _record())
        cache.store("fig13", 7, "b", _record(name="fig13"))
        assert cache.clear() == 2
        assert cache.load("fig3", 7) is None


class TestInstrumentation:
    def test_record_captures_deltas(self):
        from repro.net.sim import Simulator

        def job():
            sim = Simulator()
            sim.schedule(1.0, lambda: None)
            sim.schedule(2.0, lambda: None).cancel()
            sim.run()
            return "done"

        result, record = instrumented_call("job", 3, job)
        assert result == "done"
        assert record.experiment == "job"
        assert record.seed == 3
        assert not record.cached
        assert record.wall_time_s > 0
        assert record.events_scheduled == 2
        assert record.events_executed == 1
        assert record.events_cancelled == 1
        assert record.peak_rss_kib > 0
        assert record.as_cached().cached

    def test_record_rss_semantics(self):
        # peak_rss_kib is the process high-water mark *after* the run;
        # rss_growth_kib is the delta across the run and never negative.
        _, record = instrumented_call("job", 3, lambda: None)
        assert record.peak_rss_kib > 0
        assert 0 <= record.rss_growth_kib <= record.peak_rss_kib

    def test_trace_summary_absent_without_tracer(self):
        _, record = instrumented_call("job", 3, lambda: None)
        assert record.trace_summary is None

    def test_trace_summary_is_a_delta_under_installed_tracer(self):
        from repro.trace import Tracer, tracing

        with tracing(Tracer()) as tracer:
            tracer.instant("pre.existing", 0.0)  # must not leak into the delta

            def job():
                tracer.complete("job.work", 0.0, 1.0)
                tracer.counter("job.metric", 0.5, 1.0)
                return "done"

            result, record = instrumented_call("job", 3, job)
        assert result == "done"
        assert record.trace_summary == {
            "spans": 1, "instants": 0, "counter_samples": 1, "dropped": 0
        }

    def test_record_is_picklable_and_jsonable(self):
        record = _record()
        assert pickle.loads(pickle.dumps(record)) == record
        payload = json.loads(json.dumps(record.as_dict()))
        assert payload["experiment"] == "fig3"
        assert payload["rss_growth_kib"] == 0
        assert payload["trace_summary"] is None

    def test_streams_by_worker_sums_per_pid(self):
        records = [
            _record(rng_streams_drawn=3, worker_pid=100),
            _record(name="fig13", rng_streams_drawn=4, worker_pid=200),
            _record(name="fig6", rng_streams_drawn=5, worker_pid=100),
        ]
        assert streams_by_worker(records) == {100: 8, 200: 4}

    def test_streams_by_worker_skips_cached_records(self):
        records = [
            _record(rng_streams_drawn=3, worker_pid=100),
            _record(name="fig13", rng_streams_drawn=9, worker_pid=100, cached=True),
        ]
        assert streams_by_worker(records) == {100: 3}
        assert streams_by_worker([]) == {}


class TestExecuteExperiment:
    def test_cold_run_stores_then_hits(self, tmp_path):
        result, record = execute_experiment("fig13", 7, str(tmp_path))
        assert not record.cached
        assert record.rng_streams_drawn > 0
        cached_result, cached_record = execute_experiment("fig13", 7, str(tmp_path))
        assert cached_record.cached
        assert _to_jsonable(cached_result) == _to_jsonable(result)

    def test_without_cache_root_never_writes(self, tmp_path):
        execute_experiment("fig13", 7, None)
        assert not any(tmp_path.iterdir())


class TestRunCampaign:
    def test_serial_parallel_and_cached_results_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        serial = run_campaign(CHEAP, seed=7, parallel=1, cache=None)
        parallel = run_campaign(CHEAP, seed=7, parallel=2, cache=cache)
        cached = run_campaign(CHEAP, seed=7, parallel=1, cache=cache)
        assert [o.name for o in serial] == CHEAP
        assert [o.name for o in parallel] == CHEAP
        assert not any(o.record.cached for o in parallel)
        assert all(o.record.cached for o in cached)
        for s, p, c in zip(serial, parallel, cached):
            assert _to_jsonable(s.result) == _to_jsonable(p.result)
            assert _to_jsonable(s.result) == _to_jsonable(c.result)

    def test_serial_and_parallel_cached_results_byte_identical(self, tmp_path):
        """Same seed, serial vs --parallel 2: the cached payloads match byte
        for byte, not merely structurally."""
        serial_cache = ResultCache(tmp_path / "serial")
        parallel_cache = ResultCache(tmp_path / "parallel")
        serial = run_campaign(CHEAP, seed=7, parallel=1, cache=serial_cache)
        parallel = run_campaign(CHEAP, seed=7, parallel=2, cache=parallel_cache)
        for s, p in zip(serial, parallel):
            assert pickle.dumps(s.result) == pickle.dumps(p.result)

    def test_second_invocation_at_least_5x_faster_via_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        started = time.perf_counter()
        run_campaign(CHEAP, seed=7, cache=cache)
        cold_s = time.perf_counter() - started
        started = time.perf_counter()
        outcomes = run_campaign(CHEAP, seed=7, cache=cache)
        warm_s = time.perf_counter() - started
        assert all(o.record.cached for o in outcomes)
        assert warm_s < cold_s / 5, f"cache gave only {cold_s / warm_s:.1f}x"

    def test_progress_reports_every_outcome(self, tmp_path):
        seen = []
        run_campaign(["fig13"], seed=7, cache=None, progress=seen.append)
        assert [o.name for o in seen] == ["fig13"]
        assert seen[0].record.experiment == "fig13"

    def test_duplicate_names_run_once(self):
        calls = []
        outcomes = run_campaign(
            ["fig13", "fig13"], seed=7, cache=None, progress=calls.append
        )
        assert [o.name for o in outcomes] == ["fig13"]
        assert len(calls) == 1

    def test_unknown_name_raises_before_running(self):
        with pytest.raises(UnknownExperimentError):
            run_campaign(["nope"], seed=7, cache=None)

    def test_empty_request(self):
        assert run_campaign([], seed=7, cache=None) == []


class TestProfiling:
    def test_profiled_call_returns_result_and_rows(self):
        from repro.runner import ProfileCollector
        from repro.runner.profiling import profiled_call

        collector = ProfileCollector(top_n=5)
        result, rows = profiled_call("x", collector, lambda: sum(range(1000)))
        assert result == sum(range(1000))
        assert collector.runs == 1
        assert len(rows) <= 5
        for row in rows:
            assert {"function", "ncalls", "tottime_s", "cumtime_s"} <= set(row)

    def test_install_stack_mirrors_trace(self):
        from repro.runner import ProfileCollector
        from repro.runner import profiling

        assert profiling.active() is None
        collector = profiling.install(ProfileCollector())
        assert profiling.active() is collector
        with pytest.raises(RuntimeError, match="different collector"):
            profiling.uninstall(ProfileCollector())
        profiling.uninstall(collector)
        assert profiling.active() is None

    def test_empty_collector_refuses_dump(self, tmp_path):
        from repro.runner import ProfileCollector

        collector = ProfileCollector()
        assert collector.empty
        with pytest.raises(RuntimeError, match="no profiled runs"):
            collector.dump(str(tmp_path / "out.pstats"))

    def test_instrumented_call_attaches_profile_top(self, tmp_path):
        import pstats

        from repro.runner import ProfileCollector
        from repro.runner import profiling

        collector = profiling.install(ProfileCollector())
        try:
            _, record = instrumented_call("fig13", 7, lambda: EXPERIMENTS["fig13"].run(7))
        finally:
            profiling.uninstall(collector)
        assert record.profile_top is not None
        assert any("fig13" in row["function"] for row in record.profile_top)
        path = tmp_path / "campaign.pstats"
        collector.dump(str(path))
        stats = pstats.Stats(str(path))
        assert stats.total_calls > 0

    def test_uninstrumented_record_has_no_profile(self):
        _, record = instrumented_call("fig13", 7, lambda: EXPERIMENTS["fig13"].run(7))
        assert record.profile_top is None


class TestCampaignMetrics:
    def test_record_metrics_snapshot_for_instrumented_experiment(self):
        _, record = instrumented_call("fig13", 7, lambda: EXPERIMENTS["fig13"].run(7))
        assert record.metrics is not None
        assert "fig13.rtt_gap.mean_ms" in record.metrics["metrics"]

    def test_record_metrics_none_without_kpis(self):
        _, record = instrumented_call("fig3", 7, lambda: EXPERIMENTS["fig3"].run(7))
        assert record.metrics is None

    def test_serial_and_parallel_merged_metrics_byte_identical(self):
        from repro.runner import merged_metrics

        serial = run_campaign(["fig13", "fig22"], seed=7, parallel=1, cache=None)
        parallel = run_campaign(["fig13", "fig22"], seed=7, parallel=2, cache=None)
        assert json.dumps(merged_metrics(serial), sort_keys=True) == json.dumps(
            merged_metrics(parallel), sort_keys=True
        )
