"""Tests for repro.trace: recording, install stack, exporters, analysis.

The integration tests at the bottom pin the contract the subsystem
exists for: traces are a pure function of (experiment, seed) — two runs
export byte-identical JSONL — and tracing never perturbs results.
"""

import json

import pytest

from repro import trace
from repro.trace import (
    NULL_TRACER,
    NullTracer,
    TraceStats,
    Tracer,
    current,
    diff_traces,
    install,
    load_trace,
    summarize,
    summary_dict,
    summary_table,
    to_chrome,
    to_jsonl_lines,
    tracing,
    uninstall,
    write_chrome,
    write_jsonl,
)


class TestTracerRecording:
    def test_complete_records_span_with_sorted_args(self):
        tracer = Tracer()
        tracer.complete("ho.phase:rrc", 1.0, 1.5, kind="5G-5G", step=2)
        (span,) = tracer.spans()
        assert span.name == "ho.phase:rrc"
        assert span.begin_s == 1.0
        assert span.end_s == 1.5
        assert span.duration_s == pytest.approx(0.5)
        assert span.args == (("kind", "5G-5G"), ("step", 2))

    def test_begin_end_handle(self):
        tracer = Tracer()
        handle = tracer.begin("attach", 2.0, cell=11)
        assert tracer.spans() == []  # nothing recorded until end()
        handle.end(3.0, outcome="ok")
        (span,) = tracer.spans(name="attach")
        assert (span.begin_s, span.end_s) == (2.0, 3.0)
        assert dict(span.args) == {"cell": 11, "outcome": "ok"}

    def test_end_is_idempotent(self):
        tracer = Tracer()
        handle = tracer.begin("x", 0.0)
        handle.end(1.0)
        handle.end(2.0)
        assert len(tracer.spans(name="x")) == 1

    def test_span_context_manager_reads_clock(self):
        tracer = Tracer()
        clock = iter([5.0, 7.0])
        with tracer.span("walk", lambda: next(clock), leg="nr"):
            pass
        (span,) = tracer.spans(name="walk")
        assert (span.begin_s, span.end_s) == (5.0, 7.0)
        assert dict(span.args) == {"leg": "nr"}

    def test_instants_and_query(self):
        tracer = Tracer()
        tracer.instant("ho.trigger", 1.0, kind="5G-5G")
        tracer.instant("tcp.rto", 2.0)
        assert len(tracer.instants()) == 2
        (hit,) = tracer.instants(name="ho.trigger")
        assert hit.time_s == 1.0

    def test_counter_series_in_emission_order(self):
        tracer = Tracer()
        tracer.counter("tcp.cwnd_bytes", 0.1, 10.0)
        tracer.counter("tcp.cwnd_bytes", 0.2, 20.0)
        tracer.counter("sim.queue_depth", 0.1, 1.0)
        assert tracer.counter_series("tcp.cwnd_bytes") == [(0.1, 10.0), (0.2, 20.0)]
        assert tracer.counter_names() == ["sim.queue_depth", "tcp.cwnd_bytes"]

    def test_counter_without_clock_uses_per_series_index(self):
        tracer = Tracer()
        tracer.counter("radio.mcs", None, 5.0)
        tracer.counter("harq.retx", None, 1.0)
        tracer.counter("radio.mcs", None, 9.0)
        assert tracer.counter_series("radio.mcs") == [(0.0, 5.0), (1.0, 9.0)]
        assert tracer.counter_series("harq.retx") == [(0.0, 1.0)]

    def test_bump_accumulates_running_total(self):
        tracer = Tracer()
        tracer.bump("tcp.retransmissions", 1.0)
        tracer.bump("tcp.retransmissions", 2.0, delta=2.0)
        assert tracer.counter_series("tcp.retransmissions") == [(1.0, 1.0), (2.0, 3.0)]

    def test_prefix_query(self):
        tracer = Tracer()
        tracer.complete("ho.phase:rrc", 0.0, 1.0)
        tracer.complete("ho.phase:path_switch", 1.0, 2.0)
        tracer.complete("sim.dispatch", 0.0, 0.0)
        assert len(tracer.spans(prefix="ho.phase:")) == 2
        assert tracer.span_names() == ["ho.phase:path_switch", "ho.phase:rrc", "sim.dispatch"]

    def test_ring_evicts_oldest_and_counts_drops(self):
        tracer = Tracer(capacity=4)
        for i in range(6):
            tracer.instant(f"e{i}", float(i))
        records = tracer.records()
        assert [r.name for r in records] == ["e2", "e3", "e4", "e5"]
        assert tracer.stats() == TraceStats(
            spans=0, instants=6, counter_samples=0, emitted=6, dropped=2
        )

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_clear_resets_everything(self):
        tracer = Tracer(capacity=4)
        tracer.complete("a", 0.0, 1.0)
        tracer.counter("c", None, 1.0)
        tracer.bump("b", 0.0)
        tracer.clear()
        assert tracer.records() == []
        assert tracer.stats() == TraceStats(0, 0, 0, 0, 0)
        tracer.counter("c", None, 2.0)  # per-series index restarted
        assert tracer.counter_series("c") == [(0.0, 2.0)]


class TestInstallStack:
    def test_default_is_null_tracer(self):
        assert current() is NULL_TRACER
        assert not current().enabled

    def test_install_uninstall(self):
        tracer = Tracer()
        assert install(tracer) is tracer
        try:
            assert current() is tracer
        finally:
            uninstall(tracer)
        assert current() is NULL_TRACER

    def test_tracing_context_manager_nests(self):
        with tracing() as outer:
            assert current() is outer
            with tracing(Tracer(capacity=8)) as inner:
                assert current() is inner
                assert inner.capacity == 8
            assert current() is outer
        assert current() is NULL_TRACER

    def test_uninstall_requires_matching_tracer(self):
        a, b = Tracer(), Tracer()
        install(a)
        try:
            with pytest.raises(RuntimeError, match="out of order"):
                uninstall(b)
        finally:
            uninstall(a)

    def test_uninstall_with_nothing_installed_raises(self):
        with pytest.raises(RuntimeError, match="no tracer installed"):
            uninstall()


class TestNullTracer:
    def test_all_hooks_are_no_ops(self):
        null = NullTracer()
        null.complete("a", 0.0, 1.0)
        null.instant("b", 0.0)
        null.counter("c", None, 1.0)
        null.bump("d", 0.0)
        null.begin("e", 0.0).end(1.0)
        with null.span("f", lambda: 0.0):
            pass
        assert null.records() == []
        assert null.spans() == []
        assert null.instants() == []
        assert null.counter_series("c") == []
        assert null.counter_names() == []
        assert null.span_names() == []
        assert null.stats() == TraceStats(0, 0, 0, 0, 0)
        null.clear()


def _small_tracer() -> Tracer:
    tracer = Tracer()
    tracer.complete("ho.phase:rrc", 1.0, 1.5, kind="5G-5G")
    tracer.instant("ho.trigger", 1.0, kind="5G-5G")
    tracer.counter("sim.queue_depth", 1.0, 3.0)
    return tracer


class TestJsonlExport:
    def test_header_then_sorted_key_records(self):
        lines = to_jsonl_lines(_small_tracer(), meta={"seed": 7})
        header = json.loads(lines[0])
        assert header["kind"] == "header"
        assert header["tool"] == "repro.trace"
        assert header["schema_version"] == 1
        assert header["emitted"] == 3
        assert header["dropped"] == 0
        assert header["meta"] == {"seed": 7}
        kinds = [json.loads(line)["kind"] for line in lines[1:]]
        assert kinds == ["span", "instant", "counter"]
        for line in lines:
            assert line == json.dumps(json.loads(line), sort_keys=True)

    def test_identical_traces_export_identical_bytes(self):
        assert to_jsonl_lines(_small_tracer()) == to_jsonl_lines(_small_tracer())

    def test_write_and_load_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert write_jsonl(_small_tracer(), str(path), meta={"seed": 7}) == 3
        loaded = load_trace(str(path))
        original = _small_tracer()
        assert loaded.spans() == original.spans()
        assert loaded.instants() == original.instants()
        assert loaded.counter_series("sim.queue_depth") == [(1.0, 3.0)]


class TestChromeExport:
    def test_event_structure(self):
        document = to_chrome(_small_tracer(), meta={"seed": 7})
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"] == {"seed": 7}
        events = document["traceEvents"]
        assert {e["ph"] for e in events} <= {"X", "C", "i", "M"}
        assert all(e["pid"] == 1 for e in events)
        (span,) = [e for e in events if e["ph"] == "X"]
        assert span["ts"] == pytest.approx(1.0e6)  # virtual s -> us
        assert span["dur"] == pytest.approx(0.5e6)
        (instant,) = [e for e in events if e["ph"] == "i"]
        assert instant["s"] == "t"

    def test_categories_become_named_threads(self):
        events = to_chrome(_small_tracer())["traceEvents"]
        thread_names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert thread_names == {"ho", "sim"}

    def test_write_and_load_round_trip(self, tmp_path):
        path = tmp_path / "trace.json"
        assert write_chrome(_small_tracer(), str(path)) >= 3
        loaded = load_trace(str(path))
        (span,) = loaded.spans(name="ho.phase:rrc")
        assert span.begin_s == pytest.approx(1.0)
        assert span.duration_s == pytest.approx(0.5)
        assert loaded.counter_series("sim.queue_depth") == [(1.0, 3.0)]

    def test_loaded_file_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome(_small_tracer(), str(path))
        document = json.loads(path.read_text())
        assert isinstance(document["traceEvents"], list)


class TestAnalysis:
    def test_summary_dict(self):
        summary = summary_dict(_small_tracer())
        assert summary["spans"] == {"ho.phase:rrc": {"count": 1, "total_s": 0.5}}
        assert summary["instants"] == {"ho.trigger": 1}
        assert summary["counters"] == {"sim.queue_depth": {"samples": 1, "last": 3.0}}
        assert summary["emitted"] == 3
        assert summary["dropped"] == 0

    def test_summarize_compact_counts(self):
        assert summarize(_small_tracer()) == {
            "spans": 1, "instants": 1, "counter_samples": 1, "dropped": 0
        }

    def test_summary_table_renders(self):
        text = summary_table(_small_tracer()).render()
        assert "ho.phase:rrc" in text
        assert "sim.queue_depth" in text

    def test_diff_identical(self):
        diff = diff_traces(_small_tracer(), _small_tracer())
        assert diff.identical
        assert "(identical)" in diff.table().render()

    def test_diff_reports_changed_names_only(self):
        other = _small_tracer()
        other.complete("ho.phase:rrc", 2.0, 2.7)
        other.counter("sim.queue_depth", 2.0, 5.0)
        diff = diff_traces(_small_tracer(), other)
        assert not diff.identical
        assert diff.span_counts == {"ho.phase:rrc": (1, 2)}
        assert diff.counter_finals == {"sim.queue_depth": (3.0, 5.0)}
        assert diff.instant_counts == {}


def _handoff_campaign(seed=7, duration_s=120.0):
    """Run the walk campaign bypassing its lru_cache (so hooks fire)."""
    from repro.experiments.ho_campaign import _run_campaign
    from repro.scenario import default_scenario

    return _run_campaign.__wrapped__(seed, duration_s, default_scenario())


class TestInstrumentationIntegration:
    def test_handoff_run_emits_phase_spans(self):
        with tracing() as tracer:
            data = _handoff_campaign()
        assert data.events  # the walk produced hand-offs
        handoffs = tracer.spans(prefix="handoff:")
        assert len(handoffs) == len(data.events)
        phases = tracer.spans(prefix="ho.phase:")
        assert phases, "signalling steps should appear as ho.phase: spans"
        assert all(s.end_s >= s.begin_s for s in phases)
        assert len(tracer.instants(name="ho.trigger")) == len(data.events)
        assert len(tracer.instants(name="ho.complete")) == len(data.events)

    def test_a3_to_complete_span_covers_the_procedure(self):
        with tracing() as tracer:
            _handoff_campaign()
        spans = tracer.spans(name="ho.a3_to_complete")
        assert spans
        for span in spans:
            assert span.duration_s > 0

    def test_energy_simulator_emits_state_spans(self):
        from repro.experiments import fig23_energy_timeline

        with tracing() as tracer:
            fig23_energy_timeline.run(seed=7)
        spans = tracer.spans(prefix="energy.")
        assert spans
        assert all(dict(s.args)["power_w"] > 0 for s in spans)

    def test_link_adaptation_emits_mcs_counter(self):
        from repro.radio.linkadapt import LinkAdaptation

        with tracing() as tracer:
            LinkAdaptation.for_sinr(15.0)
            LinkAdaptation.for_sinr(-10.0)
        series = tracer.counter_series("radio.mcs")
        assert len(series) == 2
        assert series[0] == (0.0, series[0][1])
        assert series[1][1] == -1.0  # out-of-range SINR -> no grant

    def test_trace_is_deterministic_for_fixed_seed(self):
        with tracing() as first:
            _handoff_campaign()
        with tracing() as second:
            _handoff_campaign()
        assert to_jsonl_lines(first) == to_jsonl_lines(second)
        assert diff_traces(first, second).identical

    def test_tracing_does_not_perturb_results(self):
        plain = _handoff_campaign()
        with tracing():
            traced = _handoff_campaign()
        assert traced.events == plain.events
        assert traced.trace == plain.trace
        assert traced.outages == plain.outages

    def test_module_facade_reexports_core(self):
        assert trace.current() is NULL_TRACER
        assert trace.Tracer is Tracer


class TestLoadFailures:
    """Defective trace files raise ValueError with a diagnosable message."""

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty trace file"):
            load_trace(str(path))

    def test_blank_lines_only(self, tmp_path):
        path = tmp_path / "blank.jsonl"
        path.write_text("\n\n  \n")
        with pytest.raises(ValueError, match="empty trace file"):
            load_trace(str(path))

    def test_truncated_jsonl(self, tmp_path):
        path = tmp_path / "trunc.jsonl"
        tracer = Tracer()
        tracer.complete("x", 0.0, 1.0)
        lines = to_jsonl_lines(tracer)
        path.write_text("\n".join(lines)[:-10])
        with pytest.raises(ValueError, match="truncated or malformed trace JSONL"):
            load_trace(str(path))

    def test_record_missing_fields(self, tmp_path):
        path = tmp_path / "missing.jsonl"
        header = '{"kind": "header", "tool": "repro.trace", "schema_version": 1}'
        path.write_text(header + '\n{"kind": "span", "name": "x"}\n')
        with pytest.raises(ValueError, match="truncated or malformed span record"):
            load_trace(str(path))

    def test_truncated_chrome_json(self, tmp_path):
        path = tmp_path / "trunc.json"
        tracer = Tracer()
        tracer.complete("x", 0.0, 1.0)
        write_chrome(tracer, str(path))
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(ValueError, match="truncated or malformed"):
            load_trace(str(path))


class TestMetricsBridge:
    """Tracer.feed_metrics mirrors counter samples into quantile sketches."""

    def test_counter_samples_flow_into_registry(self):
        from repro.metrics import MetricRegistry

        tracer = Tracer()
        registry = MetricRegistry(origin="t")
        tracer.feed_metrics(registry)
        for value in (1.0, 2.0, 3.0):
            tracer.counter("link.mcs_index", value, value)
        sketch = registry.get("trace.link.mcs_index")
        assert sketch.count == 3
        assert sketch.mean == pytest.approx(2.0)

    def test_names_are_sanitized_to_metric_charset(self):
        from repro.metrics import MetricRegistry

        tracer = Tracer()
        registry = MetricRegistry(origin="t")
        tracer.feed_metrics(registry, prefix="trace")
        tracer.counter("HO Latency:5G-5G", 0.0, 7.0)
        assert registry.names() == ["trace.ho_latency_5g_5g"]

    def test_detach_stops_mirroring(self):
        from repro.metrics import MetricRegistry

        tracer = Tracer()
        registry = MetricRegistry(origin="t")
        tracer.feed_metrics(registry)
        tracer.counter("x", 0.0, 1.0)
        tracer.feed_metrics(None)
        tracer.counter("x", 1.0, 2.0)
        assert registry.get("trace.x").count == 1

    def test_bridge_survives_ring_eviction(self):
        from repro.metrics import MetricRegistry

        tracer = Tracer(capacity=4)
        registry = MetricRegistry(origin="t")
        tracer.feed_metrics(registry)
        for i in range(100):
            tracer.counter("x", float(i), float(i))
        assert len(tracer.records()) == 4
        assert registry.get("trace.x").count == 100

    def test_null_tracer_accepts_feed_metrics(self):
        NULL_TRACER.feed_metrics(None)
