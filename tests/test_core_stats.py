"""Unit tests for repro.core.stats."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.stats import Cdf, histogram_counts, percent, summarize

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestSummary:
    def test_basic_fields(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.median == pytest.approx(2.5)

    def test_std_population(self):
        s = summarize([2.0, 4.0])
        assert s.std == pytest.approx(1.0)

    def test_empty_raises_uniform_message(self):
        with pytest.raises(ValueError, match="^empty sample$"):
            summarize([])

    def test_str_format(self):
        assert "±" in str(summarize([1.0, 2.0]))

    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_mean_within_bounds(self, xs):
        s = summarize(xs)
        assert s.minimum - 1e-9 <= s.mean <= s.maximum + 1e-9


class TestCdf:
    def test_fraction_below(self):
        cdf = Cdf([1.0, 2.0, 2.0, 4.0])
        assert cdf.fraction_below(2.5) == pytest.approx(0.75)
        assert cdf.fraction_below(0.5) == 0.0
        assert cdf.fraction_below(4.0) == 1.0

    def test_fraction_above_complements(self):
        cdf = Cdf([1.0, 2.0, 3.0])
        assert cdf.fraction_above(1.5) == pytest.approx(1.0 - cdf.fraction_below(1.5))

    def test_percentile_median(self):
        assert Cdf([1.0, 2.0, 3.0]).percentile(50) == 2.0

    def test_percentile_out_of_range(self):
        with pytest.raises(ValueError):
            Cdf([1.0]).percentile(101)

    def test_empty_raises_uniform_message(self):
        with pytest.raises(ValueError, match="^empty sample$"):
            Cdf([])

    def test_points_monotone(self):
        pts = Cdf([3.0, 1.0, 2.0]).points()
        values = [v for v, _ in pts]
        fracs = [f for _, f in pts]
        assert values == sorted(values)
        assert fracs == sorted(fracs)
        assert fracs[-1] == pytest.approx(1.0)

    def test_values_read_only(self):
        cdf = Cdf([1.0, 2.0])
        with pytest.raises(ValueError):
            cdf.values[0] = 99.0

    @given(st.lists(finite_floats, min_size=1, max_size=100), finite_floats)
    def test_fraction_below_is_probability(self, xs, threshold):
        assert 0.0 <= Cdf(xs).fraction_below(threshold) <= 1.0

    @given(st.lists(finite_floats, min_size=2, max_size=100))
    def test_percentiles_monotone(self, xs):
        cdf = Cdf(xs)
        assert cdf.percentile(25) <= cdf.percentile(50) <= cdf.percentile(75)


class TestCdfVsP2Sketch:
    """Cross-validate ``Cdf.percentile`` against the streaming P² estimator.

    Two independent implementations of "the median of this sample" —
    numpy interpolation over the full sorted sample vs the five-marker
    P² recurrence — must agree to within a few percent of the sample
    spread, or one of them is wrong.
    """

    def _samples(self, n=2000):
        from repro.core.rng import RngFactory

        rng = RngFactory(123).stream("stats:p2:crosscheck")
        return [float(v) for v in rng.gamma(2.0, 15.0, size=n)]

    @pytest.mark.parametrize("pct", [50.0, 90.0, 99.0])
    def test_streaming_estimate_matches_exact_percentile(self, pct):
        from repro.metrics.sketches import P2Quantile

        samples = self._samples()
        sketch = P2Quantile(pct / 100.0)
        for value in samples:
            sketch.observe(value)
        exact = Cdf(samples).percentile(pct)
        spread = max(samples) - min(samples)
        # Tail quantiles converge slowest in P²; 4% of the spread is well
        # inside the algorithm's published accuracy on 2000 samples.
        assert sketch.value() == pytest.approx(exact, abs=0.04 * spread)

    def test_small_samples_are_exact(self):
        from repro.metrics.sketches import P2Quantile

        sketch = P2Quantile(0.5)
        for value in (4.0, 1.0, 3.0, 2.0):
            sketch.observe(value)
        assert sketch.value() == pytest.approx(Cdf([1.0, 2.0, 3.0, 4.0]).percentile(50))

    def test_empty_sketch_raises_uniform_message(self):
        from repro.metrics.sketches import P2Quantile

        with pytest.raises(ValueError, match="^empty sample$"):
            P2Quantile(0.5).value()


class TestHistogram:
    def test_paper_style_bins(self):
        rows = histogram_counts([-110, -95, -85, -85, -75, -65, -50], (-140, -105, -90, -80, -70, -60, -40))
        counts = [c for _, c, _ in rows]
        assert counts == [1, 1, 2, 1, 1, 1]

    def test_fractions_sum_to_one(self):
        rows = histogram_counts([1, 2, 3, 4], (0, 2, 5))
        assert sum(f for _, _, f in rows) == pytest.approx(1.0)

    def test_out_of_range_ignored(self):
        rows = histogram_counts([-200.0, 50.0], (-140, -105, -40))
        assert sum(c for _, c, _ in rows) == 0

    def test_empty_sample(self):
        rows = histogram_counts([], (0, 1))
        assert rows[0][1] == 0
        assert rows[0][2] == 0.0


def test_percent_formatting():
    assert percent(0.0807) == "8.07%"
    assert percent(1.0) == "100.00%"
