"""Tests for the panoramic video telephony model."""

import numpy as np
import pytest

from repro.core import LTE_PROFILE, NR_PROFILE
from repro.apps.video import (
    CAPTURE_SPLICE_RENDER_S,
    DECODE_S,
    ENCODE_S,
    FPS,
    RTMP_RELAY_S,
    VIDEO_PROFILES,
    FrameRecord,
    run_video_session,
)


class TestVideoProfiles:
    def test_resolution_ladder(self):
        assert list(VIDEO_PROFILES) == ["720P", "1080P", "4K", "5.7K"]
        rates = [p.mean_rate_bps for p in VIDEO_PROFILES.values()]
        assert rates == sorted(rates)

    def test_dynamic_fluctuates_more(self):
        for profile in VIDEO_PROFILES.values():
            assert profile.sigma(dynamic=True) > profile.sigma(dynamic=False)

    def test_4k_rate_in_paper_range(self):
        # Paper cites 35-68 Mbps for 4K telephony.
        assert 35e6 <= VIDEO_PROFILES["4K"].mean_rate_bps <= 68e6


class TestFrameRecord:
    def test_undelivered_frame_has_no_delay(self):
        frame = FrameRecord(index=0, capture_time_s=0.0, size_bytes=1400)
        assert frame.display_time_s() is None
        assert frame.end_to_end_delay_s() is None

    def test_delay_composition(self):
        frame = FrameRecord(index=0, capture_time_s=1.0, size_bytes=1400)
        frame.sent_time_s = 1.0 + ENCODE_S
        frame.network_done_s = frame.sent_time_s + 0.03
        delay = frame.end_to_end_delay_s()
        expected = ENCODE_S + 0.03 + DECODE_S + CAPTURE_SPLICE_RENDER_S + RTMP_RELAY_S
        assert delay == pytest.approx(expected)


class TestVideoSession:
    def test_unknown_resolution_rejected(self):
        with pytest.raises(ValueError):
            run_video_session(NR_PROFILE, "8K", dynamic=False)

    def test_frame_count_matches_duration(self):
        session = run_video_session(NR_PROFILE, "720P", False, duration_s=5.0, seed=1)
        assert len(session.frames) == pytest.approx(5.0 * FPS, abs=2)

    def test_5g_carries_4k(self):
        session = run_video_session(NR_PROFILE, "4K", False, duration_s=8.0, seed=1)
        nominal = VIDEO_PROFILES["4K"].mean_rate_bps * 0.25
        assert session.mean_throughput_bps > 0.8 * nominal
        assert session.freeze_count() < 5

    def test_4g_collapses_on_57k(self):
        session = run_video_session(LTE_PROFILE, "5.7K", False, duration_s=8.0, seed=1)
        nominal = VIDEO_PROFILES["5.7K"].mean_rate_bps * 0.25
        assert session.mean_throughput_bps < 0.5 * nominal
        assert session.freeze_count() > 20

    def test_frame_delay_near_paper_level(self):
        session = run_video_session(NR_PROFILE, "4K", False, duration_s=8.0, seed=1)
        delays = session.frame_delays_s()
        assert delays
        # Paper: ~950 ms, dominated by processing.
        assert 0.8 <= float(np.mean(delays)) <= 1.1

    def test_processing_constants_sum(self):
        total = ENCODE_S + DECODE_S + CAPTURE_SPLICE_RENDER_S
        # Paper: ~650 ms of frame processing (Sec. 5.2).
        assert total == pytest.approx(0.650, abs=0.01)

    def test_deterministic(self):
        a = run_video_session(NR_PROFILE, "1080P", True, duration_s=4.0, seed=9)
        b = run_video_session(NR_PROFILE, "1080P", True, duration_s=4.0, seed=9)
        assert a.mean_throughput_bps == b.mean_throughput_bps
