"""The batched radio core must be bit-identical to the scalar path.

Every test here compares ``repro.radio.batch``-powered entry points
against the original per-point / per-cell scalar code on the same
inputs and asserts exact float equality — not ``approx``.  The batched
core replicates the scalar arithmetic operation-for-operation (see
``repro.core.vecmath``), so any drift, however small, is a bug.

Also hosts the hot-path regression test: one survey point must build
exactly one path-loss map (the pre-fix ``_survey_at`` built three).
"""

import numpy as np
import pytest

from repro.experiments.common import testbed as build_testbed
from repro.geometry.points import Point
from repro.radio import batch, linkadapt
from repro.radio.coverage import _survey_at, survey_at_locations
from repro.radio.propagation import _MIN_DISTANCE_M, _SHADOW_GRID_M

SEED = 7


@pytest.fixture(scope="module")
def bed():
    return build_testbed(SEED)


def _random_points(campus, n, seed):
    rng = np.random.default_rng(seed)
    xs = rng.uniform(0.0, campus.width_m, n)
    ys = rng.uniform(0.0, campus.height_m, n)
    return [Point(x, y) for x, y in zip(xs.tolist(), ys.tolist())]


def _edge_case_points(bed):
    """Locations that stress every numeric edge of the batched core."""
    points = []
    # Grazing rays: receivers exactly on building corners and edge
    # midpoints, where the segment-rectangle clip hits p == 0 branches.
    for building in bed.campus.buildings.buildings[:4]:
        points.append(Point(building.x_min, building.y_min))
        points.append(Point(building.x_max, building.y_max))
        points.append(Point((building.x_min + building.x_max) / 2.0, building.y_min))
        points.append(Point(building.x_max, (building.y_min + building.y_max) / 2.0))
    # Shadow-grid boundaries: exact multiples of the 10 m grid, where
    # float floor-division must match Python's `//` bit-for-bit.
    for k in (0.0, 1.0, 3.0, 7.0):
        points.append(Point(k * _SHADOW_GRID_M, (k + 2.0) * _SHADOW_GRID_M))
        points.append(Point(k * _SHADOW_GRID_M + 1e-9, k * _SHADOW_GRID_M - 1e-9))
    # Sub-metre receivers: inside the _MIN_DISTANCE_M clamp around a mast.
    for cell in bed.nr.cells[:3]:
        points.append(Point(cell.position.x + 0.3, cell.position.y - 0.2))
        points.append(Point(cell.position.x, cell.position.y))
        points.append(
            Point(cell.position.x + _MIN_DISTANCE_M, cell.position.y)
        )
    return points


def _all_points(bed):
    return _random_points(bed.campus, 200, seed=123) + _edge_case_points(bed)


class TestBatchedEquivalence:
    def test_rsrp_matrix_matches_per_cell_scalar(self, bed):
        for network in (bed.nr, bed.lte):
            points = _all_points(bed)
            matrix = network.rsrp_matrix_at(points)
            assert matrix.shape == (len(points), len(network.cells))
            for i, location in enumerate(points):
                for j, cell in enumerate(network.cells):
                    assert matrix[i, j] == cell.rsrp_at(
                        location, network.environment
                    ), (location, cell.pci)

    def test_rsrp_map_at_is_an_n1_view(self, bed):
        for location in _edge_case_points(bed):
            rsrps = bed.nr.rsrp_map_at(location)
            assert list(rsrps) == list(bed.nr.pcis)
            row = bed.nr.rsrp_matrix_at((location,))[0]
            assert list(rsrps.values()) == row.tolist()

    def test_samples_match_scalar_combine(self, bed):
        points = _all_points(bed)
        for serving_pci in (None, bed.nr.cells[0].pci):
            samples = bed.nr.samples_at(points, serving_pci=serving_pci)
            for location, sample in zip(points, samples):
                rsrps = bed.nr.rsrp_map_at(location)
                pci = serving_pci
                if pci is None:
                    pci = max(rsrps, key=lambda p: rsrps[p])
                scalar = bed.nr.sample_from_rsrps(rsrps, serving_pci=pci)
                assert sample == scalar, location

    def test_bit_rates_match_scalar(self, bed):
        points = _all_points(bed)
        rates = bed.nr.bit_rates_at(points)
        overhead = bed.nr.bit_rates_at(points, include_transport_overhead=True)
        for location, rate, rate_oh in zip(points, rates.tolist(), overhead.tolist()):
            sample = bed.nr.sample_at(location)
            assert rate == bed.nr.bit_rate_from_sample(sample)
            assert rate_oh == bed.nr.bit_rate_from_sample(
                sample, include_transport_overhead=True
            )

    def test_survey_at_locations_matches_survey_at(self, bed):
        points = _all_points(bed)
        batched = survey_at_locations(bed.nr, points)
        for location, point in zip(points, batched):
            assert point == _survey_at(bed.nr, location), location

    def test_locked_survey_matches_and_checks_pci(self, bed):
        points = _edge_case_points(bed)
        pci = bed.nr.cells[-1].pci
        batched = survey_at_locations(bed.nr, points, serving_pci=pci)
        for location, point in zip(points, batched):
            assert point == _survey_at(bed.nr, location, serving_pci=pci)
        with pytest.raises(KeyError, match="no cell with PCI"):
            survey_at_locations(bed.nr, points, serving_pci=99999)

    def test_empty_location_list(self, bed):
        assert survey_at_locations(bed.nr, []) == []


class TestCqiVectorization:
    def _sweep(self):
        sweep = list(np.linspace(-20.0, 40.0, 601))
        # Exact decision boundaries: the SINR at which the Shannon
        # efficiency equals each CQI table entry, plus the decode floor.
        att = linkadapt._SHANNON_ATTENUATION
        for entry in linkadapt.CQI_TABLE:
            linear = 2.0 ** (entry.efficiency / att) - 1.0
            sweep.append(10.0 * np.log10(linear))
        sweep.extend(
            [
                linkadapt.MIN_DECODABLE_SINR_DB,
                linkadapt.MIN_DECODABLE_SINR_DB - 1e-12,
                linkadapt.MIN_DECODABLE_SINR_DB + 1e-12,
                -100.0,
                100.0,
            ]
        )
        return np.array(sweep)

    def test_cqi_array_matches_scalar(self):
        sinr = self._sweep()
        cqis = linkadapt.cqi_from_sinr_array(sinr)
        assert cqis.tolist() == [linkadapt.cqi_from_sinr(v) for v in sinr.tolist()]

    def test_efficiency_array_matches_scalar(self):
        sinr = self._sweep()
        effs = linkadapt.spectral_efficiency_from_sinr_array(sinr)
        assert effs.tolist() == [
            linkadapt.spectral_efficiency_from_sinr(v) for v in sinr.tolist()
        ]


class TestSurveyHotPath:
    def test_one_path_loss_map_per_survey(self, bed, monkeypatch):
        """Regression: ``_survey_at`` used to rebuild the map three times."""
        calls = []
        real = batch.path_loss_matrix_db

        def counting(environment, tx_points, carrier_mhz, x, y):
            calls.append(len(x) * len(tx_points))
            return real(environment, tx_points, carrier_mhz, x, y)

        monkeypatch.setattr(batch, "path_loss_matrix_db", counting)

        location = Point(250.0, 400.0)
        _survey_at(bed.nr, location)
        assert calls == [len(bed.nr.cells)]  # one map, not three

        calls.clear()
        points = _random_points(bed.campus, 50, seed=5)
        survey_at_locations(bed.nr, points)
        assert calls == [50 * len(bed.nr.cells)]  # one matrix for the lot
