"""Fast integration tests for the ablation/discussion experiments."""

import pytest

from repro.experiments import (
    ablation_coexistence,
    appendix_tables,
    discussion_cpe_dsl,
    discussion_edge_computing,
    sec34_event_mix,
)
from repro.mobility.events import EventType


class TestCoexistencePlumbing:
    def test_shared_path_carries_both_flows(self):
        result = ablation_coexistence.run(seed=3, duration_s=4.0, scale=0.02)
        for point in result.points.values():
            assert point.nr_throughput_bps > 0
            assert point.lte_throughput_bps > 0
            assert point.lte_p95_rtt_s > 0

    def test_points_cover_multipliers(self):
        result = ablation_coexistence.run(seed=3, duration_s=3.0, scale=0.02)
        assert set(result.points) == set(ablation_coexistence.BUFFER_MULTIPLIERS)


class TestAppendix:
    def test_distance_cross_check(self):
        result = appendix_tables.run()
        # The worst error is the paper's own Suzhou row (see benchmark).
        assert result.max_distance_error_km > 300.0

    def test_all_three_tables_render(self):
        result = appendix_tables.run()
        assert len(result.tab5().rows) == 7
        assert len(result.tab6().rows) == 20
        assert len(result.tab7().rows) == 6

    def test_tab7_shows_doubled_tail(self):
        rows = appendix_tables.run().tab7().to_dicts()
        tail = next(r for r in rows if r["parameter"] == "tail cycle")
        assert tail["4G LTE"] == "10720"
        assert tail["5G NR NSA"] == "21440"


class TestEventMix:
    def test_short_walk_produces_reports(self):
        result = sec34_event_mix.run(seed=3, duration_s=120.0)
        assert result.reports > 0
        assert result.total > 0

    def test_fractions_sum_to_one(self):
        result = sec34_event_mix.run(seed=3, duration_s=120.0)
        total = sum(result.fraction(e) for e in EventType)
        assert total == pytest.approx(1.0)


class TestCpeDsl:
    def test_run_structure(self):
        result = discussion_cpe_dsl.run()
        assert result.window_throughput_bps > result.deep_indoor_throughput_bps
        assert len(result.table().rows) == 5


class TestEdgeComputing:
    def test_edge_beats_all_cloud_deployments(self):
        result = discussion_edge_computing.run()
        assert all(result.edge_rtt_ms < rtt for rtt in result.cloud_rtt_ms.values())
        assert 0.0 < result.edge_plt_s < result.cloud_plt_s

    def test_cloud_rtt_grows_with_distance(self):
        result = discussion_edge_computing.run()
        distances = sorted(result.cloud_rtt_ms)
        rtts = [result.cloud_rtt_ms[d] for d in distances]
        assert rtts == sorted(rtts)
