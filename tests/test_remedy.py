"""Tests for the remedy layer: presets, PEP transport, remedy experiments.

The full-length acceptance runs (45 s, all six variants) live in the
benchmark suite; these tests exercise the same code paths at small
durations and check the structural invariants — scenario plumbing,
split-connection mechanics, determinism, and that every congestion
control algorithm the paper measured survives every remedy.
"""

import dataclasses

import pytest

from repro.core import NR_PROFILE
from repro.experiments import remedy_cca_matrix, remedy_comparison
from repro.experiments.registry import resolve_names
from repro.net import PathConfig
from repro.qdisc import RemedySection
from repro.scenario import apply_overrides, preset, resolve_scenario, scenario_digest
from repro.transport import CC_ALGORITHMS, run_tcp


def anomaly_config(**overrides):
    """A small-scale path that still reproduces the TCP anomaly."""
    defaults = dict(profile=NR_PROFILE, scale=0.05)
    defaults.update(overrides)
    return PathConfig(**defaults)


class TestRemedySection:
    def test_default_is_noop(self):
        section = RemedySection()
        assert section.is_noop

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(qdisc="codel"),
            dict(autorate=True, qdisc="cake"),
            dict(pep=True),
            dict(wired_buffer_ratio=4.0),
        ],
    )
    def test_any_remedy_clears_noop(self, kwargs):
        assert not RemedySection(**kwargs).is_noop

    def test_unknown_qdisc_rejected(self):
        with pytest.raises(ValueError, match="unknown qdisc"):
            RemedySection(qdisc="red")

    def test_autorate_requires_cake(self):
        with pytest.raises(ValueError, match="autorate"):
            RemedySection(qdisc="codel", autorate=True)

    def test_pep_cc_names_validated(self):
        with pytest.raises(ValueError, match="pep_ran_cc"):
            RemedySection(pep=True, pep_ran_cc="turbo")

    def test_unit_bounds(self):
        with pytest.raises(ValueError):
            RemedySection(target_ms=0.0)
        with pytest.raises(ValueError):
            RemedySection(shaper_ratio=1.5)
        with pytest.raises(ValueError):
            RemedySection(pep=True, pep_buffer_bytes=1024)


class TestRemedyPresets:
    def test_codel_preset(self):
        scn = preset("paper-nsa-codel")
        assert scn.remedy.qdisc == "codel"
        assert not scn.remedy.pep

    def test_cake_autorate_preset(self):
        scn = preset("paper-nsa-cake-autorate")
        assert scn.remedy.qdisc == "cake"
        assert scn.remedy.autorate

    def test_pep_preset(self):
        scn = preset("paper-nsa-pep")
        assert scn.remedy.pep
        assert scn.remedy.qdisc == "droptail"

    def test_default_scenario_remedy_free(self):
        # The paper's measured deployment: any remedy here would break
        # byte-identity with the pre-remedy tree.
        assert resolve_scenario(None).remedy.is_noop

    def test_remedy_presets_have_distinct_digests(self):
        names = ("paper-nsa", "paper-nsa-codel", "paper-nsa-cake-autorate", "paper-nsa-pep")
        digests = {scenario_digest(preset(n)) for n in names}
        assert len(digests) == len(names)

    def test_overrides_reach_remedy_section(self):
        scn = apply_overrides(
            resolve_scenario(None), {"remedy.qdisc": "codel", "remedy.target_ms": "7.5"}
        )
        assert scn.remedy.qdisc == "codel"
        assert scn.remedy.target_ms == 7.5

    def test_override_validation_propagates(self):
        with pytest.raises(ValueError):
            apply_overrides(resolve_scenario(None), {"remedy.qdisc": "wondershaper"})


class TestPepTransport:
    def test_pep_run_reports_split_algorithm(self):
        config = anomaly_config(remedy=RemedySection(pep=True))
        result = run_tcp(config, "cubic", duration_s=3.0, seed=3)
        assert result.algorithm == "pep:cubic+bbr"
        assert result.throughput_bps > 0
        assert result.rtt_samples

    def test_pep_ran_cc_configurable(self):
        config = anomaly_config(remedy=RemedySection(pep=True, pep_ran_cc="cubic"))
        result = run_tcp(config, "reno", duration_s=2.0, seed=3)
        assert result.algorithm == "pep:reno+cubic"

    def test_pep_end_to_end_rtt_exceeds_segment_rtt(self):
        # The e2e sample is the time-aligned sum of both halves, so it
        # must dominate a single segment's base RTT.
        config = anomaly_config(remedy=RemedySection(pep=True))
        result = run_tcp(config, "cubic", duration_s=3.0, seed=3)
        min_rtt_s = min(rtt for _, rtt in result.rtt_samples)
        assert min_rtt_s > 0.001

    def test_pep_deterministic(self):
        config = anomaly_config(remedy=RemedySection(pep=True))
        a = run_tcp(config, "cubic", duration_s=2.0, seed=5)
        b = run_tcp(config, "cubic", duration_s=2.0, seed=5)
        assert a == b


class TestRemedyVsCca:
    """Every CCA the paper measured must survive CoDel and the PEP."""

    @pytest.mark.parametrize("algorithm", sorted(CC_ALGORITHMS))
    @pytest.mark.parametrize("remedy_name", ["codel", "pep"])
    def test_cca_recovers_under_remedy(self, algorithm, remedy_name):
        remedy = (
            RemedySection(qdisc="codel") if remedy_name == "codel" else RemedySection(pep=True)
        )
        result = run_tcp(anomaly_config(remedy=remedy), algorithm, duration_s=3.0, seed=3)
        assert result.throughput_bps > 0
        assert result.cwnd_trace
        # cwnd recovery: the window grows again after its deepest cut.
        cwnds = [c for _, c in result.cwnd_trace]
        trough = min(cwnds)
        assert max(cwnds[cwnds.index(trough):]) > trough

    @pytest.mark.parametrize("algorithm", sorted(CC_ALGORITHMS))
    def test_cca_remedy_runs_deterministic(self, algorithm):
        config = anomaly_config(remedy=RemedySection(qdisc="codel"))
        a = run_tcp(config, algorithm, duration_s=2.0, seed=7)
        b = run_tcp(config, algorithm, duration_s=2.0, seed=7)
        assert a == b


class TestRemedyComparison:
    def test_percentile_ms(self):
        samples = tuple((float(i), i / 1000.0) for i in range(1, 101))
        assert remedy_comparison.percentile_ms(samples, 0.0) == pytest.approx(1.0)
        assert remedy_comparison.percentile_ms(samples, 0.99) == pytest.approx(100.0)
        assert remedy_comparison.percentile_ms((), 0.5) != remedy_comparison.percentile_ms((), 0.5)

    def test_variant_registry(self):
        assert set(remedy_comparison.HEADLINE_VARIANTS) <= set(remedy_comparison.REMEDY_VARIANTS)
        assert "droptail" in remedy_comparison.REMEDY_VARIANTS

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError, match="unknown remedy variant"):
            remedy_comparison.run(duration_s=1.0, variants=("droptail", "wondershaper"))

    def test_structure_and_determinism(self):
        kwargs = dict(seed=3, duration_s=3.0, variants=("droptail", "codel"))
        a = remedy_comparison.run(**kwargs)
        b = remedy_comparison.run(**kwargs)
        assert a == b
        assert set(a.goodput_bps) == {"droptail", "codel"}
        assert a.baseline_bps > 0
        assert all(v > 0 for v in a.goodput_bps.values())
        table = a.table()
        assert len(table.rows) == 2
        assert a.bufferbloat_ms("codel") == a.p99_rtt_ms["codel"] - a.min_rtt_ms["codel"]

    def test_registry_names_resolve(self):
        assert resolve_names(["remedy-comparison"]) == ["remedy-comparison"]
        # Underscore spellings normalize (CLI ergonomics).
        assert resolve_names(["remedy_comparison"]) == ["remedy-comparison"]


class TestRemedyCcaMatrix:
    def test_matrix_structure(self):
        result = remedy_cca_matrix.run(seed=3, duration_s=2.0, algorithms=("reno",))
        assert set(result.goodput_bps) == {
            ("reno", v) for v in remedy_cca_matrix.MATRIX_VARIANTS
        }
        assert result.gain("reno", "droptail") == pytest.approx(1.0)
        table = result.table()
        assert len(table.rows) == 1

    def test_matrix_deterministic(self):
        a = remedy_cca_matrix.run(seed=4, duration_s=2.0, algorithms=("cubic",))
        b = remedy_cca_matrix.run(seed=4, duration_s=2.0, algorithms=("cubic",))
        assert a == b


class TestRemedyScenarioThreading:
    def test_remedy_rides_any_scenario(self):
        # remedy_comparison overrides the scenario's own [remedy] per
        # variant, so a remedied preset as the base changes nothing else.
        base = dataclasses.replace(preset("paper-nsa"), remedy=RemedySection(qdisc="cake"))
        result = remedy_comparison.run(
            seed=3, duration_s=2.0, variants=("droptail",), scenario=base
        )
        assert "droptail" in result.goodput_bps
