"""Tests for the CLI: JSON export fidelity, dedupe, metadata, flags."""

import dataclasses
import json

import numpy as np
import pytest

from repro.cli import _to_jsonable, main


@dataclasses.dataclass(frozen=True)
class _NumpyResult:
    count: np.int64
    ratio: np.float32
    flag: np.bool_
    trace: np.ndarray
    nested: dict


def _numpy_result() -> _NumpyResult:
    return _NumpyResult(
        count=np.int64(42),
        ratio=np.float32(0.5),
        flag=np.bool_(True),
        trace=np.array([[1.5, 2.5], [3.5, 4.5]]),
        nested={"depth": np.int32(7), "values": (np.float64(1.0), np.uint8(3))},
    )


class TestToJsonable:
    def test_numpy_scalars_become_numbers(self):
        out = _to_jsonable(_numpy_result())
        assert out["count"] == 42 and isinstance(out["count"], int)
        assert out["ratio"] == 0.5 and isinstance(out["ratio"], float)
        assert out["flag"] is True
        assert out["nested"]["depth"] == 7
        assert out["nested"]["values"] == [1.0, 3]

    def test_ndarray_becomes_nested_lists(self):
        out = _to_jsonable(_numpy_result())
        assert out["trace"] == [[1.5, 2.5], [3.5, 4.5]]

    def test_round_trips_through_json_without_repr_strings(self):
        text = json.dumps(_to_jsonable(_numpy_result()))
        assert "np." in repr(np.int64(42))  # the failure mode being guarded
        assert "np." not in text
        assert json.loads(text)["count"] == 42

    def test_plain_python_passthrough(self):
        value = {"a": [1, 2.5, "x", None, True], "b": (1, 2)}
        assert _to_jsonable(value) == {"a": [1, 2.5, "x", None, True], "b": [1, 2]}

    def test_opaque_objects_still_fall_back_to_repr(self):
        assert _to_jsonable(object).startswith("<class")


class TestRunCommand:
    def test_duplicate_names_export_once_with_metadata(self, tmp_path, capsys):
        out_file = tmp_path / "out.json"
        assert main(["run", "fig13", "fig13", "--json", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert payload["seed"] == 7
        assert list(payload["experiments"]) == ["fig13"]
        entry = payload["experiments"]["fig13"]
        assert entry["wall_time_s"] > 0
        assert entry["cached"] is False
        assert entry["record"]["seed"] == 7
        # The experiment ran once, not twice.
        out = capsys.readouterr().out
        assert out.count("== fig13:") == 1

    def test_second_run_serves_from_cache(self, tmp_path, capsys):
        assert main(["run", "fig13"]) == 0
        assert main(["run", "fig13"]) == 0
        assert "[cache]" in capsys.readouterr().out

    def test_no_cache_flag_bypasses_cache(self, tmp_path, capsys):
        assert main(["run", "fig13", "--no-cache"]) == 0
        assert main(["run", "fig13", "--no-cache"]) == 0
        assert "[cache]" not in capsys.readouterr().out

    def test_timings_table(self, capsys):
        assert main(["run", "fig13", "--timings"]) == 0
        out = capsys.readouterr().out
        assert "Campaign timings" in out
        assert "rng streams" in out

    def test_run_without_names_or_all_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["run"])

    def test_seed_flows_into_export(self, tmp_path):
        out_file = tmp_path / "out.json"
        assert main(["run", "fig13", "--seed", "11", "--json", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert payload["seed"] == 11
        assert payload["experiments"]["fig13"]["record"]["seed"] == 11


class TestTraceFlag:
    # fig23 drives the energy simulator directly (no in-process result
    # caching), so every traced run actually emits records.

    def test_trace_writes_jsonl(self, tmp_path, capsys):
        trace_file = tmp_path / "fig23.trace.jsonl"
        assert main(["run", "fig23", "--trace", str(trace_file), "--no-cache"]) == 0
        assert "wrote trace" in capsys.readouterr().out
        lines = trace_file.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == "header"
        assert header["meta"]["experiments"] == ["fig23"]
        assert header["meta"]["seed"] == 7
        assert len(lines) > 1  # energy.* spans made it to disk

    def test_trace_writes_chrome_json(self, tmp_path):
        trace_file = tmp_path / "fig23.trace.json"
        assert main(["run", "fig23", "--trace", str(trace_file), "--no-cache"]) == 0
        document = json.loads(trace_file.read_text())
        assert isinstance(document["traceEvents"], list)
        assert any(e["ph"] == "X" for e in document["traceEvents"])
        assert document["otherData"]["experiments"] == ["fig23"]

    def test_trace_forces_serial(self, tmp_path, capsys):
        trace_file = tmp_path / "fig23.trace.jsonl"
        assert main(
            ["run", "fig23", "--trace", str(trace_file), "--parallel", "4"]
        ) == 0
        assert "ignoring --parallel" in capsys.readouterr().err

    def test_traced_run_matches_untraced_export(self, tmp_path):
        plain_file = tmp_path / "plain.json"
        traced_file = tmp_path / "traced.json"
        trace_file = tmp_path / "t.jsonl"
        assert main(["run", "fig23", "--no-cache", "--json", str(plain_file)]) == 0
        assert main(
            ["run", "fig23", "--no-cache", "--json", str(traced_file),
             "--trace", str(trace_file)]
        ) == 0
        plain = json.loads(plain_file.read_text())["experiments"]["fig23"]["result"]
        traced = json.loads(traced_file.read_text())["experiments"]["fig23"]["result"]
        assert json.dumps(plain, sort_keys=True) == json.dumps(traced, sort_keys=True)


class TestTraceCommand:
    def _write_trace(self, path):
        from repro.trace import Tracer, write_jsonl

        tracer = Tracer()
        tracer.complete("ho.phase:rrc", 1.0, 1.5, kind="5G-5G")
        tracer.counter("sim.queue_depth", 1.0, 3.0)
        write_jsonl(tracer, str(path))

    def test_summary(self, tmp_path, capsys):
        trace_file = tmp_path / "t.jsonl"
        self._write_trace(trace_file)
        assert main(["trace", "summary", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "ho.phase:rrc" in out
        assert "sim.queue_depth" in out

    def test_export_to_chrome(self, tmp_path, capsys):
        trace_file = tmp_path / "t.jsonl"
        out_file = tmp_path / "t.json"
        self._write_trace(trace_file)
        assert main(["trace", "export", str(trace_file), str(out_file)]) == 0
        assert "trace event(s)" in capsys.readouterr().out
        assert isinstance(json.loads(out_file.read_text())["traceEvents"], list)

    def test_diff_identical_exits_zero(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        self._write_trace(a)
        self._write_trace(b)
        assert main(["trace", "diff", str(a), str(b)]) == 0
        assert "(identical)" in capsys.readouterr().out

    def test_diff_divergent_exits_one(self, tmp_path, capsys):
        from repro.trace import Tracer, write_jsonl

        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        self._write_trace(a)
        other = Tracer()
        other.complete("ho.phase:rrc", 1.0, 1.9, kind="5G-5G")
        write_jsonl(other, str(b))
        assert main(["trace", "diff", str(a), str(b)]) == 1
        assert "span total (ms)" in capsys.readouterr().out

    def test_missing_file_exits_one(self, tmp_path, capsys):
        assert main(["trace", "summary", str(tmp_path / "nope.jsonl")]) == 1
        assert "no such file" in capsys.readouterr().err

    def test_empty_file_fails_with_message(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["trace", "summary", str(empty)]) == 1
        assert "empty trace file" in capsys.readouterr().err

    def test_truncated_file_fails_with_message(self, tmp_path, capsys):
        trunc = tmp_path / "trunc.jsonl"
        good = '{"kind": "header", "tool": "repro.trace", "schema_version": 1}'
        trunc.write_text(good + '\n{"kind": "span", "name"')
        assert main(["trace", "diff", str(trunc), str(trunc)]) == 1
        assert "truncated or malformed" in capsys.readouterr().err


class TestRunObservability:
    """`run --metrics` and `run --profile` end-to-end through the CLI."""

    def test_metrics_export_serial_vs_parallel_byte_identical(self, tmp_path, capsys):
        a, b = tmp_path / "serial.jsonl", tmp_path / "parallel.jsonl"
        assert main(["run", "fig13", "fig22", "--no-cache", "--metrics", str(a)]) == 0
        assert main(
            ["run", "fig13", "fig22", "--no-cache", "--parallel", "2",
             "--metrics", str(b)]
        ) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()

    def test_metrics_file_round_trips_through_metrics_show(self, tmp_path, capsys):
        path = tmp_path / "m.jsonl"
        assert main(["run", "fig13", "--no-cache", "--metrics", str(path)]) == 0
        capsys.readouterr()
        assert main(["metrics", "show", str(path)]) == 0
        assert "fig13.rtt_gap.mean_ms" in capsys.readouterr().out

    def test_metrics_header_carries_campaign_meta(self, tmp_path, capsys):
        import json

        path = tmp_path / "m.jsonl"
        assert main(
            ["run", "fig13", "--no-cache", "--seed", "11", "--metrics", str(path)]
        ) == 0
        capsys.readouterr()
        header = json.loads(path.read_text().splitlines()[0])
        assert header["meta"] == {"experiments": ["fig13"], "seed": 11}

    def test_profile_writes_pstats_and_prints_hotspots(self, tmp_path, capsys):
        import pstats

        path = tmp_path / "campaign.pstats"
        assert main(["run", "fig13", "--no-cache", "--profile", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Profile" in out and "cumulative" in out
        assert pstats.Stats(str(path)).total_calls > 0

    def test_profile_forces_serial_uncached(self, tmp_path, capsys):
        path = tmp_path / "campaign.pstats"
        assert main(
            ["run", "fig13", "--profile", str(path), "--parallel", "4"]
        ) == 0
        assert "ignoring --parallel" in capsys.readouterr().err


class TestBenchCommand:
    def _point(self, tmp_path, name="point.json", extra=()):
        out = tmp_path / name
        code = main(
            ["bench", "fig13", "--out", str(out),
             "--baseline", str(tmp_path / "absent.json"), *extra]
        )
        return code, out

    def test_writes_valid_trajectory_point(self, tmp_path, capsys):
        import json

        code, out = self._point(tmp_path)
        assert code == 0  # no baseline yet: hint, not failure
        err = capsys.readouterr().err
        assert "no baseline" in err
        payload = json.loads(out.read_text())
        assert payload["tool"] == "repro.bench"
        assert payload["experiments"]["fig13"]["wall_time_norm"] > 0
        assert "fig13.rtt_gap.mean_ms" in payload["experiments"]["fig13"]["kpis"]

    def test_write_baseline_then_gate_passes(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main(
            ["bench", "fig13", "--baseline", str(baseline), "--write-baseline"]
        ) == 0
        assert baseline.exists()
        capsys.readouterr()
        assert main(
            ["bench", "fig13", "--out", str(tmp_path / "p2.json"),
             "--baseline", str(baseline)]
        ) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_gate_fails_on_injected_slowdown(self, tmp_path, capsys):
        import json

        baseline = tmp_path / "baseline.json"
        assert main(
            ["bench", "fig13", "--baseline", str(baseline), "--write-baseline"]
        ) == 0
        slowed = json.loads(baseline.read_text())
        slowed["experiments"]["fig13"]["wall_time_norm"] *= 2.0
        doctored = tmp_path / "slow.json"
        doctored.write_text(json.dumps(slowed))
        capsys.readouterr()
        # fig13 runs in ~20 ms, under the wall-noise floor — disable the
        # floor so the doctored slowdown is actually gated.
        assert main(
            ["bench", "--compare", str(doctored), "--baseline", str(baseline),
             "--min-wall-s", "0"]
        ) == 1
        assert "wall time" in capsys.readouterr().out

    def test_compare_missing_point_exits_two(self, tmp_path, capsys):
        assert main(["bench", "--compare", str(tmp_path / "nope.json")]) == 2
        assert "no such file" in capsys.readouterr().err
