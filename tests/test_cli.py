"""Tests for the CLI: JSON export fidelity, dedupe, metadata, flags."""

import dataclasses
import json

import numpy as np
import pytest

from repro.cli import _to_jsonable, main


@dataclasses.dataclass(frozen=True)
class _NumpyResult:
    count: np.int64
    ratio: np.float32
    flag: np.bool_
    trace: np.ndarray
    nested: dict


def _numpy_result() -> _NumpyResult:
    return _NumpyResult(
        count=np.int64(42),
        ratio=np.float32(0.5),
        flag=np.bool_(True),
        trace=np.array([[1.5, 2.5], [3.5, 4.5]]),
        nested={"depth": np.int32(7), "values": (np.float64(1.0), np.uint8(3))},
    )


class TestToJsonable:
    def test_numpy_scalars_become_numbers(self):
        out = _to_jsonable(_numpy_result())
        assert out["count"] == 42 and isinstance(out["count"], int)
        assert out["ratio"] == 0.5 and isinstance(out["ratio"], float)
        assert out["flag"] is True
        assert out["nested"]["depth"] == 7
        assert out["nested"]["values"] == [1.0, 3]

    def test_ndarray_becomes_nested_lists(self):
        out = _to_jsonable(_numpy_result())
        assert out["trace"] == [[1.5, 2.5], [3.5, 4.5]]

    def test_round_trips_through_json_without_repr_strings(self):
        text = json.dumps(_to_jsonable(_numpy_result()))
        assert "np." in repr(np.int64(42))  # the failure mode being guarded
        assert "np." not in text
        assert json.loads(text)["count"] == 42

    def test_plain_python_passthrough(self):
        value = {"a": [1, 2.5, "x", None, True], "b": (1, 2)}
        assert _to_jsonable(value) == {"a": [1, 2.5, "x", None, True], "b": [1, 2]}

    def test_opaque_objects_still_fall_back_to_repr(self):
        assert _to_jsonable(object).startswith("<class")


class TestRunCommand:
    def test_duplicate_names_export_once_with_metadata(self, tmp_path, capsys):
        out_file = tmp_path / "out.json"
        assert main(["run", "fig13", "fig13", "--json", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert payload["seed"] == 7
        assert list(payload["experiments"]) == ["fig13"]
        entry = payload["experiments"]["fig13"]
        assert entry["wall_time_s"] > 0
        assert entry["cached"] is False
        assert entry["record"]["seed"] == 7
        # The experiment ran once, not twice.
        out = capsys.readouterr().out
        assert out.count("== fig13:") == 1

    def test_second_run_serves_from_cache(self, tmp_path, capsys):
        assert main(["run", "fig13"]) == 0
        assert main(["run", "fig13"]) == 0
        assert "[cache]" in capsys.readouterr().out

    def test_no_cache_flag_bypasses_cache(self, tmp_path, capsys):
        assert main(["run", "fig13", "--no-cache"]) == 0
        assert main(["run", "fig13", "--no-cache"]) == 0
        assert "[cache]" not in capsys.readouterr().out

    def test_timings_table(self, capsys):
        assert main(["run", "fig13", "--timings"]) == 0
        out = capsys.readouterr().out
        assert "Campaign timings" in out
        assert "rng streams" in out

    def test_run_without_names_or_all_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["run"])

    def test_seed_flows_into_export(self, tmp_path):
        out_file = tmp_path / "out.json"
        assert main(["run", "fig13", "--seed", "11", "--json", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert payload["seed"] == 11
        assert payload["experiments"]["fig13"]["record"]["seed"] == 11
