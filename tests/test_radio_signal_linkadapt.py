"""Unit tests for signal metrics, link adaptation, PHY rates and antennas."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import LTE_PROFILE, NR_PROFILE
from repro.radio.antenna import OmniAntenna, SectorAntenna
from repro.radio.linkadapt import (
    CQI_TABLE,
    MAX_SPECTRAL_EFFICIENCY,
    LinkAdaptation,
    cqi_from_sinr,
    spectral_efficiency_from_sinr,
)
from repro.radio.phy import (
    TRANSPORT_EFFICIENCY,
    PrbAllocator,
    max_phy_bit_rate,
    phy_bit_rate,
)
from repro.radio.signal import (
    MIN_SERVICE_RSRP_DBM,
    combine_signal,
    noise_per_re_dbm,
    rsrp_dbm,
)

sinrs = st.floats(min_value=-20.0, max_value=50.0)


class TestAntenna:
    def test_boresight_gain_is_max(self):
        ant = SectorAntenna(azimuth_deg=90.0)
        assert ant.gain_dbi(90.0) == ant.max_gain_dbi

    def test_backlobe_capped(self):
        ant = SectorAntenna(azimuth_deg=0.0, front_to_back_db=30.0)
        assert ant.gain_dbi(180.0) == ant.max_gain_dbi - 30.0

    def test_3db_point_at_half_beamwidth(self):
        ant = SectorAntenna(azimuth_deg=0.0, beamwidth_deg=65.0)
        # 12*(32.5/65)^2 = 3 dB down.
        assert ant.gain_dbi(32.5) == pytest.approx(ant.max_gain_dbi - 3.0)

    def test_pattern_symmetric(self):
        ant = SectorAntenna(azimuth_deg=0.0)
        assert ant.gain_dbi(40.0) == pytest.approx(ant.gain_dbi(-40.0))

    def test_wraparound(self):
        ant = SectorAntenna(azimuth_deg=350.0)
        assert ant.gain_dbi(10.0) == pytest.approx(ant.gain_dbi(330.0))

    def test_fov(self):
        ant = SectorAntenna(azimuth_deg=0.0)
        assert ant.in_field_of_view(0.0)
        assert not ant.in_field_of_view(180.0)

    def test_omni_uniform(self):
        ant = OmniAntenna(max_gain_dbi=2.0)
        assert ant.gain_dbi(0.0) == ant.gain_dbi(123.0) == 2.0
        assert ant.in_field_of_view(275.0)

    def test_invalid_beamwidth(self):
        with pytest.raises(ValueError):
            SectorAntenna(azimuth_deg=0.0, beamwidth_deg=0.0)


class TestLinkAdaptation:
    def test_cqi_table_monotone(self):
        effs = [e.efficiency for e in CQI_TABLE]
        assert effs == sorted(effs)
        assert len(CQI_TABLE) == 15

    def test_top_cqi_is_256qam_0925(self):
        top = CQI_TABLE[-1]
        assert top.modulation == "256QAM"
        assert top.code_rate == pytest.approx(0.9258, abs=1e-3)

    def test_very_low_sinr_unusable(self):
        assert cqi_from_sinr(-10.0) == 0
        assert spectral_efficiency_from_sinr(-10.0) == 0.0

    def test_high_sinr_saturates(self):
        assert cqi_from_sinr(40.0) == 15
        assert spectral_efficiency_from_sinr(40.0) == MAX_SPECTRAL_EFFICIENCY

    @given(sinrs)
    def test_cqi_monotone_in_sinr(self, sinr):
        assert cqi_from_sinr(sinr + 1.0) >= cqi_from_sinr(sinr)

    @given(sinrs)
    def test_efficiency_bounded(self, sinr):
        se = spectral_efficiency_from_sinr(sinr)
        assert 0.0 <= se <= MAX_SPECTRAL_EFFICIENCY

    def test_link_adaptation_reports_mcs_27_at_peak(self):
        la = LinkAdaptation.for_sinr(35.0)
        assert la.mcs_index == 27
        assert la.modulation == "256QAM"
        assert la.usable

    def test_link_adaptation_unusable(self):
        la = LinkAdaptation.for_sinr(-15.0)
        assert not la.usable
        assert la.efficiency == 0.0


class TestPhyRates:
    def test_nr_dl_peak_matches_paper(self):
        # Paper Sec. 4.1: 1200.98 Mbps maximum physical rate.
        assert max_phy_bit_rate(NR_PROFILE, "dl") / 1e6 == pytest.approx(1201.0, rel=0.001)

    def test_udp_baseline_fraction(self):
        # 880-900 Mbps UDP over the peak rate = 74.94%.
        assert TRANSPORT_EFFICIENCY == pytest.approx(0.7494)
        udp = max_phy_bit_rate(NR_PROFILE, "dl") * TRANSPORT_EFFICIENCY
        assert 880e6 <= udp <= 910e6

    def test_nr_ul_baseline(self):
        udp = max_phy_bit_rate(NR_PROFILE, "ul") * TRANSPORT_EFFICIENCY
        assert udp / 1e6 == pytest.approx(130.0, rel=0.03)

    def test_lte_dl_night_baseline(self):
        udp = max_phy_bit_rate(LTE_PROFILE, "dl") * TRANSPORT_EFFICIENCY
        assert udp / 1e6 == pytest.approx(200.0, rel=0.03)

    def test_lte_ul_night_baseline(self):
        udp = max_phy_bit_rate(LTE_PROFILE, "ul") * TRANSPORT_EFFICIENCY
        assert udp / 1e6 == pytest.approx(100.0, rel=0.03)

    def test_rate_scales_with_prb_fraction(self):
        full = phy_bit_rate(NR_PROFILE, 30.0, prb_fraction=1.0)
        half = phy_bit_rate(NR_PROFILE, 30.0, prb_fraction=0.5)
        assert half == pytest.approx(full / 2)

    def test_rate_zero_below_floor(self):
        assert phy_bit_rate(NR_PROFILE, -20.0) == 0.0

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError):
            phy_bit_rate(NR_PROFILE, 10.0, direction="sideways")

    def test_bad_prb_fraction_rejected(self):
        with pytest.raises(ValueError):
            phy_bit_rate(NR_PROFILE, 10.0, prb_fraction=1.5)

    @given(sinrs)
    def test_rate_below_peak(self, sinr):
        assert phy_bit_rate(NR_PROFILE, sinr) <= max_phy_bit_rate(NR_PROFILE) + 1e-6


class TestPrbAllocator:
    def test_5g_gets_almost_all_prbs(self):
        alloc = PrbAllocator(NR_PROFILE, np.random.default_rng(0))
        grants = [alloc.allocate("day").granted for _ in range(50)]
        assert all(260 <= g <= 264 for g in grants)

    def test_4g_daytime_contention(self):
        alloc = PrbAllocator(LTE_PROFILE, np.random.default_rng(0))
        grants = [alloc.allocate("day").granted for _ in range(50)]
        assert all(40 <= g <= 85 for g in grants)

    def test_4g_night_recovery(self):
        alloc = PrbAllocator(LTE_PROFILE, np.random.default_rng(0))
        grants = [alloc.allocate("night").granted for _ in range(50)]
        assert all(95 <= g <= 100 for g in grants)

    def test_mean_fraction_ordering(self):
        alloc = PrbAllocator(LTE_PROFILE, np.random.default_rng(0))
        assert alloc.mean_fraction("night") > alloc.mean_fraction("day")

    def test_invalid_time_rejected(self):
        alloc = PrbAllocator(LTE_PROFILE, np.random.default_rng(0))
        with pytest.raises(ValueError):
            alloc.allocate("dusk")

    def test_fraction_property(self):
        alloc = PrbAllocator(NR_PROFILE, np.random.default_rng(1))
        a = alloc.allocate()
        assert a.fraction == pytest.approx(a.granted / NR_PROFILE.num_prb)


class TestSignal:
    def test_rsrp_spreads_power_over_res(self):
        # Doubling PRBs costs 3 dB per RE.
        a = rsrp_dbm(40.0, 100, 0.0, 100.0)
        b = rsrp_dbm(40.0, 200, 0.0, 100.0)
        assert a - b == pytest.approx(10 * math.log10(2), abs=1e-6)

    def test_rsrp_rejects_bad_prb(self):
        with pytest.raises(ValueError):
            rsrp_dbm(40.0, 0, 0.0, 100.0)

    def test_noise_per_re_scales_with_scs(self):
        assert noise_per_re_dbm(30.0) - noise_per_re_dbm(15.0) == pytest.approx(3.01, abs=0.01)

    def test_sinr_degrades_with_interference(self):
        clean = combine_signal(-80.0, [], 30.0)
        dirty = combine_signal(-80.0, [-85.0], 30.0)
        assert dirty.sinr_db < clean.sinr_db

    def test_interference_floor_caps_sinr(self):
        floored = combine_signal(-80.0, [], 30.0, interference_floor_dbm=-105.0)
        assert floored.sinr_db == pytest.approx(25.0, abs=0.3)

    def test_rsrq_uses_full_load(self):
        # Activity scaling must not change RSRQ, only SINR.
        low = combine_signal(-80.0, [-85.0], 30.0, interference_activity=0.01)
        high = combine_signal(-80.0, [-85.0], 30.0, interference_activity=1.0)
        assert low.rsrq_db == pytest.approx(high.rsrq_db)
        assert low.sinr_db > high.sinr_db

    def test_rsrq_upper_bound(self):
        # Alone on the channel, RSRQ -> -10log10(12) = -10.79 dB.
        s = combine_signal(-60.0, [], 30.0)
        assert s.rsrq_db == pytest.approx(-10.79, abs=0.1)

    def test_service_threshold(self):
        assert combine_signal(-104.0, [], 30.0).in_service
        assert not combine_signal(-106.0, [], 30.0).in_service
        assert MIN_SERVICE_RSRP_DBM == -105.0

    def test_invalid_activity_rejected(self):
        with pytest.raises(ValueError):
            combine_signal(-80.0, [], 30.0, interference_activity=1.5)
