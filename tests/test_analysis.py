"""Tests for analysis tooling: buffer estimation, KPI logging, dataset IO."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    KpiLogger,
    KpiSample,
    estimate_buffer_packets,
    read_csv,
    read_json,
    stanford_buffer_packets,
    write_csv,
    write_json,
)


class TestBufferEstimation:
    def test_known_value(self):
        # 10 ms of queueing at 1 Gbps in 60 B packets: 10e-3*1e9/480 ~ 20833.
        est = estimate_buffer_packets([0.020, 0.030])
        assert est.buffer_packets == pytest.approx(20833, abs=2)

    def test_queueing_delay(self):
        est = estimate_buffer_packets([0.020, 0.025, 0.030])
        assert est.queueing_delay_s == pytest.approx(0.010)

    def test_bytes_consistent(self):
        est = estimate_buffer_packets([0.020, 0.030])
        assert est.buffer_bytes == est.buffer_packets * 60

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            estimate_buffer_packets([0.02])

    def test_rejects_nonpositive_rtts(self):
        with pytest.raises(ValueError):
            estimate_buffer_packets([0.02, -0.01])

    @given(st.lists(st.floats(min_value=1e-4, max_value=1.0), min_size=2, max_size=30))
    @settings(max_examples=30)
    def test_estimate_nonnegative(self, rtts):
        assert estimate_buffer_packets(rtts).buffer_packets >= 0

    def test_stanford_rule(self):
        # B = C*RTT/sqrt(n): 1 Gbps * 40 ms / sqrt(100) = 4 Mb -> /12000 b/pkt.
        packets = stanford_buffer_packets(1e9, 0.040, 100)
        assert packets == pytest.approx(333, abs=1)

    def test_stanford_rule_5x_capacity_needs_5x_buffer(self):
        b4 = stanford_buffer_packets(0.2e9, 0.040, 16)
        b5 = stanford_buffer_packets(1.0e9, 0.040, 16)
        assert b5 == pytest.approx(5 * b4, rel=0.01)

    def test_stanford_validation(self):
        with pytest.raises(ValueError):
            stanford_buffer_packets(0.0, 0.04, 10)
        with pytest.raises(ValueError):
            stanford_buffer_packets(1e9, 0.04, 0)


def _sample(t: float, network: str = "5G", rsrp: float = -84.0) -> KpiSample:
    return KpiSample(
        time_s=t,
        network=network,
        pci=72,
        rsrp_dbm=rsrp,
        rsrq_db=-11.0,
        sinr_db=20.0,
        cqi=15,
        mcs_index=27,
        prb_granted=262,
        bit_rate_bps=900e6,
    )


class TestKpiLogger:
    def test_append_and_len(self):
        logger = KpiLogger()
        logger.append(_sample(0.0))
        logger.append(_sample(1.0))
        assert len(logger) == 2

    def test_time_order_enforced(self):
        logger = KpiLogger()
        logger.append(_sample(1.0))
        with pytest.raises(ValueError):
            logger.append(_sample(0.5))

    def test_network_filter(self):
        logger = KpiLogger()
        logger.append(_sample(0.0, "5G"))
        logger.append(_sample(1.0, "4G"))
        assert len(list(logger.samples("5G"))) == 1
        assert len(list(logger.samples())) == 2

    def test_summarize_field(self):
        logger = KpiLogger()
        logger.append(_sample(0.0, rsrp=-80.0))
        logger.append(_sample(1.0, rsrp=-90.0))
        summary = logger.summarize_field("rsrp_dbm")
        assert summary.mean == pytest.approx(-85.0)

    def test_summarize_empty_raises(self):
        with pytest.raises(ValueError):
            KpiLogger().summarize_field("rsrp_dbm")

    def test_to_rows(self):
        logger = KpiLogger()
        logger.append(_sample(0.0))
        rows = logger.to_rows()
        assert rows[0]["pci"] == 72


class TestDatasetIo:
    def test_csv_roundtrip(self, tmp_path):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        path = tmp_path / "data.csv"
        write_csv(path, rows)
        back = read_csv(path)
        assert back == [{"a": "1", "b": "x"}, {"a": "2", "b": "y"}]

    def test_csv_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(tmp_path / "x.csv", [])

    def test_csv_heterogeneous_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(tmp_path / "x.csv", [{"a": 1}, {"b": 2}])

    def test_json_roundtrip(self, tmp_path):
        payload = {"tables": [1, 2, 3], "nested": {"x": 1.5}}
        path = tmp_path / "data.json"
        write_json(path, payload)
        assert read_json(path) == payload
