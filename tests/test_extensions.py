"""Tests for the Sec. 8 extensions: SA mode, CPE/DSL, edge computing, CLI."""

import json

import numpy as np
import pytest

from repro.core import LTE_PROFILE, NR_PROFILE
from repro.mobility import (
    NR_SA_DRX_CONFIG,
    HandoffKind,
    HandoffProcedure,
    draw_sa_handoff,
    sa_handoff_mean_latency_s,
)
from repro.radio import CpeLink, dsl_replacement_study
from repro.cli import EXPERIMENTS, main


class TestSaMode:
    def test_sa_handoff_near_4g_level(self):
        sa = sa_handoff_mean_latency_s()
        lte = HandoffProcedure.mean_latency_s(HandoffKind.LTE_TO_LTE)
        assert sa == pytest.approx(lte, rel=0.15)

    def test_sa_much_faster_than_nsa(self):
        nsa = HandoffProcedure.mean_latency_s(HandoffKind.NR_TO_NR)
        assert nsa > 3.0 * sa_handoff_mean_latency_s()

    def test_sa_draw_positive_and_varies(self):
        rng = np.random.default_rng(0)
        draws = [draw_sa_handoff(rng) for _ in range(100)]
        assert all(d > 0 for d in draws)
        assert np.std(draws) > 0
        assert np.mean(draws) == pytest.approx(sa_handoff_mean_latency_s(), rel=0.1)

    def test_sa_drx_shorter_than_nsa(self):
        from repro.energy import NR_NSA_DRX_CONFIG

        assert NR_SA_DRX_CONFIG.tail_s < NR_NSA_DRX_CONFIG.tail_s
        assert NR_SA_DRX_CONFIG.promotion_s < NR_NSA_DRX_CONFIG.promotion_s


class TestCpe:
    def test_link_quality_decays_with_distance(self):
        near = CpeLink(profile=NR_PROFILE, distance_m=80.0)
        far = CpeLink(profile=NR_PROFILE, distance_m=300.0)
        assert near.sinr_db() > far.sinr_db()
        assert near.throughput_bps() >= far.throughput_bps()

    def test_window_beats_deep_indoor(self):
        window = CpeLink(profile=NR_PROFILE, distance_m=240.0, window_mounted=True)
        indoor = CpeLink(profile=NR_PROFILE, distance_m=240.0, window_mounted=False)
        assert window.throughput_bps() > indoor.throughput_bps()

    def test_distance_validation(self):
        with pytest.raises(ValueError):
            CpeLink(profile=NR_PROFILE, distance_m=0.0)

    def test_dsl_study_paper_shape(self):
        result = dsl_replacement_study(NR_PROFILE)
        # Paper: ~650 Mbps CPE, ~39 Mbps per house, beats 24 Mbps DSL.
        assert 400e6 <= result.cpe_throughput_bps <= 800e6
        assert result.replaces_dsl
        assert result.per_house_bps == pytest.approx(
            result.cpe_throughput_bps * 3 / 50
        )

    def test_dsl_study_dense_neighbourhood_loses(self):
        # Enough houses dilute the share below the DSL line.
        result = dsl_replacement_study(NR_PROFILE, houses=200)
        assert not result.replaces_dsl

    def test_dsl_study_validation(self):
        with pytest.raises(ValueError):
            dsl_replacement_study(NR_PROFILE, houses=0)

    def test_lte_cpe_weaker(self):
        nr = CpeLink(profile=NR_PROFILE, distance_m=240.0)
        lte = CpeLink(profile=LTE_PROFILE, distance_m=240.0)
        assert nr.throughput_bps() > lte.throughput_bps()


class TestCli:
    def test_catalogue_covers_all_paper_artifacts(self):
        names = set(EXPERIMENTS)
        for required in (
            "tab1", "tab2", "tab3", "tab4",
            *(f"fig{i}" for i in range(2, 24)),
        ):
            assert required in names, required

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "tab4" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2

    def test_run_and_json_export(self, tmp_path, capsys):
        out_file = tmp_path / "results.json"
        assert main(["run", "fig22", "--json", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert "fig22" in payload["experiments"]
        assert payload["seed"] == 7
        assert payload["experiments"]["fig22"]["wall_time_s"] >= 0
        out = capsys.readouterr().out
        assert "energy per bit" in out

    def test_paper_index(self, capsys):
        assert main(["paper-index"]) == 0
        assert "benchmarks/test_" in capsys.readouterr().out

    def test_run_descriptive_experiment(self, capsys):
        # fig11 has no table(); the describe fallback must kick in.
        assert main(["run", "fig11"]) == 0
        out = capsys.readouterr().out
        assert "burst fraction" in out
