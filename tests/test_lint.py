"""Tests for replint: the rule engine, rules, pragmas, baseline and CLI.

The fixture packages under ``tests/data/lint/`` are the contract: the
dirty package seeds exactly one violation per misuse pattern at known
line numbers, and its clean twin shows the sanctioned spelling of the
same code.  The meta-test at the bottom self-hosts the linter over
``src/`` so the gate in CI can never silently rot.
"""

import json
from collections import Counter
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import Baseline, all_project_rules, all_rules, lint_paths
from repro.lint.baseline import BASELINE_SCHEMA_VERSION
from repro.lint.report import REPORT_SCHEMA_VERSION

REPO_ROOT = Path(__file__).resolve().parents[1]
DIRTY = REPO_ROOT / "tests" / "data" / "lint" / "dirty"
CLEAN = REPO_ROOT / "tests" / "data" / "lint" / "clean"

#: (rule, fixture file, line) of every seeded violation in the dirty fixtures.
EXPECTED_DIRTY = [
    ("REP001", "sweep.py", 18),  # np.random.default_rng(0)
    ("REP001", "sweep.py", 19),  # random.random()
    ("REP001", "sweep.py", 19),  # time.time()
    ("REP002", "sweep.py", 20),  # window_ms + delay_s
    ("REP002", "sweep.py", 21),  # bandwidth_hz=window_ms
    ("REP003", "sweep.py", 26),  # sim.schedule(-1.0, ...)
    ("REP003", "sweep.py", 27),  # discarded retransmit-timeout handle
    ("REP003", "sweep.py", 32),  # Simulator() inside the sweep loop
    ("REP004", "sweep.py", 14),  # module-level mutable global
    ("REP004", "sweep.py", 30),  # mutable default argument
    ("REP005", "tracing.py", 9),  # discarded Tracer.begin() handle
    ("REP005", "tracing.py", 14),  # span handle never ended
    ("REP006", "kpis.py", 11),  # dash in metric name
    ("REP006", "kpis.py", 12),  # missing unit suffix
    ("REP006", "kpis.py", 13),  # uppercase in metric name
    ("REP006", "kpis.py", 14),  # counter without _count suffix
    ("REP006", "kpis.py", 15),  # registry accessor without suffix
    ("REP006", "kpis.py", 16),  # f-string name with unsuffixed tail
    ("REP007", "deployment.py", 7),  # from repro.core.config import LTE_PROFILE
    ("REP007", "deployment.py", 7),  # ... and NR_PROFILE on the same line
    ("REP007", "deployment.py", 8),  # from repro.core import DEFAULT_HANDOFF_CONFIG
    ("REP007", "deployment.py", 13),  # config.NR_PROFILE attribute use
    ("REP008", "survey.py", 11),  # rsrp_map_at per point inside a loop
    ("REP008", "survey.py", 17),  # rsrp_at per cell in a .cells comprehension
    ("REP008", "survey.py", 23),  # sample_at per cell in a .cells loop
    ("REP009", "campaign.py", 17),  # _ms passed positionally to a _s param
    ("REP009", "campaign.py", 20),  # _ms-returning call assigned to an _s name
    ("REP009", "flow.py", 20),  # 'duration' inferred _ms at one site, _s at another
    ("REP009", "flow.py", 29),  # guard_ms() returns an _s expression
    ("REP010", "flow.py", 33),  # RngFactory(42) on an experiment-reachable path
    ("REP010", "flow.py", 38),  # rng param shadowed by default_rng(0)
    ("REP010", "flow.py", 43),  # module global mutated on a reachable path
    ("REP011", "controller.py", 10),  # numeric remedy field without unit suffix
    ("REP011", "controller.py", 11),  # second unsuffixed numeric field
    ("REP011", "controller.py", 16),  # time.monotonic() in qdisc code
    ("REP011", "controller.py", 19),  # time.perf_counter() in qdisc code
    ("REP012", "audit_probes.py", 11),  # event name outside the audit. namespace
    ("REP012", "audit_probes.py", 12),  # dash and uppercase in event name
    ("REP012", "audit_probes.py", 13),  # event name without unit suffix
    ("REP012", "audit_probes.py", 16),  # _audit_* probe helper mutating state
    ("REP013", "generator.py", 7),  # bare 'pitch' generator parameter
    ("REP013", "generator.py", 7),  # bare 'jitter' generator parameter
    ("REP013", "generator.py", 8),  # RngFactory(7) minted inside a generator
    ("REP013", "generator.py", 14),  # core_rng.default_rng(3) inside a generator
]

#: Number of python files in each fixture package.
FIXTURE_FILES = 10


class TestRegistry:
    def test_all_eleven_file_rule_families_registered(self):
        assert [r.id for r in all_rules()] == [
            "REP001", "REP002", "REP003", "REP004", "REP005", "REP006", "REP007",
            "REP008", "REP011", "REP012", "REP013",
        ]

    def test_both_project_rules_registered(self):
        assert [r.id for r in all_project_rules()] == ["REP009", "REP010"]

    def test_severities(self):
        by_id = {r.id: r.severity for r in all_rules() + all_project_rules()}
        assert by_id["REP004"] == "warning"
        assert all(
            by_id[i] == "error"
            for i in (
                "REP001", "REP002", "REP003", "REP005", "REP006", "REP007",
                "REP008", "REP009", "REP010", "REP011", "REP012", "REP013",
            )
        )


class TestFixtures:
    def test_dirty_fixture_exact_rules_and_lines(self):
        result = lint_paths([DIRTY], root=REPO_ROOT)
        assert result.files_scanned == FIXTURE_FILES
        found = sorted((v.rule, Path(v.path).name, v.line) for v in result.violations)
        assert found == sorted(EXPECTED_DIRTY)

    def test_dirty_fixture_counts(self):
        result = lint_paths([DIRTY], root=REPO_ROOT)
        assert result.counts == {
            "REP001": 3, "REP002": 2, "REP003": 3, "REP004": 2, "REP005": 2,
            "REP006": 6, "REP007": 4, "REP008": 3, "REP009": 4, "REP010": 3,
            "REP011": 4, "REP012": 4, "REP013": 4,
        }

    def test_file_pass_only_skips_project_rules(self):
        result = lint_paths([DIRTY], root=REPO_ROOT, project=False)
        assert not any(v.rule in ("REP009", "REP010") for v in result.violations)
        assert result.counts["REP001"] == 3

    def test_clean_fixture_is_clean(self):
        result = lint_paths([CLEAN], root=REPO_ROOT)
        assert result.files_scanned == FIXTURE_FILES
        assert result.violations == []

    def test_violations_carry_snippets_and_display_paths(self):
        result = lint_paths([DIRTY], root=REPO_ROOT)
        first = result.violations[0]
        assert first.path == "tests/data/lint/dirty/experiments/campaign.py"
        assert first.snippet == "settled = settle(window_ms, 3.0)"
        sweep = next(
            v for v in result.violations if v.path.endswith("sweep.py")
        )
        assert sweep.snippet == "history = []"


class TestSpanHygiene:
    """REP005 edge cases beyond the fixture package."""

    def _lint(self, tmp_path, source, name="mod.py"):
        target = tmp_path / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
        return [
            (v.rule, v.line)
            for v in lint_paths([tmp_path], root=tmp_path).violations
        ]

    def test_paired_begin_end_is_clean(self, tmp_path):
        assert self._lint(
            tmp_path,
            "def f(tracer, t0_s, t1_s):\n"
            "    span = tracer.begin('x', t0_s)\n"
            "    span.end(t1_s)\n",
        ) == []

    def test_handle_flowing_elsewhere_is_not_flagged(self, tmp_path):
        # Returned handles are out of static reach; the rule stays quiet.
        assert self._lint(
            tmp_path,
            "def f(tracer, t_s):\n"
            "    return tracer.begin('x', t_s)\n",
        ) == []

    def test_end_in_nested_function_does_not_count(self, tmp_path):
        assert self._lint(
            tmp_path,
            "def f(tracer, t0_s, t1_s):\n"
            "    span = tracer.begin('x', t0_s)\n"
            "    def later():\n"
            "        span.end(t1_s)\n"
            "    return later\n",
        ) == [("REP005", 2)]

    def test_non_tracer_receivers_are_ignored(self, tmp_path):
        assert self._lint(
            tmp_path,
            "def f(transaction, t_s):\n"
            "    transaction.begin('x', t_s)\n",
        ) == []

    def test_trace_package_itself_is_exempt(self, tmp_path):
        assert self._lint(
            tmp_path,
            "def f(tracer, t_s):\n"
            "    tracer.begin('x', t_s)\n",
            name="trace/core.py",
        ) == []

    def test_pragma_silences_rep005(self, tmp_path):
        assert self._lint(
            tmp_path,
            "def f(tracer, t_s):\n"
            "    tracer.begin('x', t_s)  # replint: ignore[REP005]\n",
        ) == []


class TestPragmas:
    def test_named_pragma_suppresses_in_fixture(self):
        source = (DIRTY / "experiments" / "sweep.py").read_text()
        assert "default_rng(1)  # replint: ignore[REP001]" in source
        result = lint_paths([DIRTY], root=REPO_ROOT)
        assert not any(
            v.line == 38 and v.path.endswith("sweep.py") for v in result.violations
        )

    def test_bare_pragma_suppresses_everything(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "import time\n"
            "t = time.time()  # replint: ignore\n"
        )
        assert lint_paths([target], root=tmp_path).violations == []

    def test_named_pragma_for_other_rule_does_not_suppress(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "import time\n"
            "t = time.time()  # replint: ignore[REP002]\n"
        )
        violations = lint_paths([target], root=tmp_path).violations
        assert [(v.rule, v.line) for v in violations] == [("REP001", 2)]

    def test_pragma_on_continuation_line_of_multiline_statement(self, tmp_path):
        # The call spans lines 2-4; a pragma on any of them suppresses the
        # violation anchored at line 2.
        target = tmp_path / "mod.py"
        target.write_text(
            "import time\n"
            "t = time.time(\n"
            "    # the slow clock\n"
            ")  # replint: ignore[REP001]\n"
        )
        assert lint_paths([target], root=tmp_path).violations == []

    def test_pragma_on_multiline_def_header_suppresses(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "def f(\n"
            "    history=[],  # replint: ignore[REP004]\n"
            "):\n"
            "    return history\n"
        )
        assert lint_paths([target], root=tmp_path).violations == []

    def test_pragma_inside_def_body_does_not_silence_header_finding(self, tmp_path):
        # A def-anchored violation ends at the header, so a pragma on the
        # first body line must not swallow it.
        target = tmp_path / "mod.py"
        target.write_text(
            "def f(history=[]):\n"
            "    return history  # replint: ignore[REP004]\n"
        )
        violations = lint_paths([target], root=tmp_path).violations
        assert [(v.rule, v.line) for v in violations] == [("REP004", 1)]


class TestBaseline:
    def test_round_trip_grandfathers_every_violation(self, tmp_path):
        result = lint_paths([DIRTY], root=REPO_ROOT)
        path = tmp_path / "baseline.json"
        Baseline.from_violations(result.violations).save(path)
        loaded = Baseline.load(path)
        assert loaded.entries == Baseline.from_violations(result.violations).entries
        applied = loaded.apply(result)
        assert applied.violations == []
        assert len(applied.baselined) == len(EXPECTED_DIRTY)

    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert Baseline.load(tmp_path / "nope.json").entries == Counter()

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"schema_version": 99, "entries": []}))
        with pytest.raises(ValueError, match="unsupported baseline schema"):
            Baseline.load(path)

    def test_entries_are_consumed_not_reused(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "import time\n"
            "t = time.time()\n"
            "t = time.time()\n"
        )
        result = lint_paths([target], root=tmp_path)
        assert len(result.violations) == 2
        one = Baseline(
            entries=Counter({("REP001", "mod.py", "t = time.time()"): 1})
        )
        applied = one.apply(result)
        assert len(applied.baselined) == 1
        assert len(applied.violations) == 1

    def test_fingerprint_survives_line_drift(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("import time\nt = time.time()\n")
        baseline = Baseline.from_violations(
            lint_paths([target], root=tmp_path).violations
        )
        target.write_text("import time\n\n\n# a comment\nt = time.time()\n")
        drifted = lint_paths([target], root=tmp_path)
        assert drifted.violations[0].line == 5
        assert baseline.apply(drifted).violations == []


class TestCli:
    def test_dirty_fixture_fails_the_gate(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", str(DIRTY), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "replint: 44 new violation(s)" in out

    def test_clean_fixture_passes(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", str(CLEAN), "--no-baseline"]) == 0
        assert "0 new violation(s)" in capsys.readouterr().out

    def test_json_report_matches_documented_schema(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", str(DIRTY), "--no-baseline", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == REPORT_SCHEMA_VERSION
        assert payload["tool"] == "replint"
        assert payload["files_scanned"] == FIXTURE_FILES
        assert payload["counts"] == {
            "REP001": 3, "REP002": 2, "REP003": 3, "REP004": 2, "REP005": 2,
            "REP006": 6, "REP007": 4, "REP008": 3, "REP009": 4, "REP010": 3,
            "REP011": 4, "REP012": 4, "REP013": 4,
        }
        assert payload["baselined_count"] == 0
        assert payload["exit_code"] == 1
        assert len(payload["violations"]) == len(EXPECTED_DIRTY)
        for entry in payload["violations"]:
            assert set(entry) == {
                "rule", "severity", "path", "line", "end_line", "col", "message",
                "snippet",
            }
            assert isinstance(entry["line"], int)
            assert isinstance(entry["col"], int)
            assert entry["severity"] in ("error", "warning")

    def test_write_baseline_then_gate_passes(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        baseline_path = tmp_path / "baseline.json"
        assert main(
            ["lint", str(DIRTY), "--write-baseline", "--baseline", str(baseline_path)]
        ) == 0
        assert "wrote 44 grandfathered violation(s)" in capsys.readouterr().out
        written = json.loads(baseline_path.read_text())
        assert written["schema_version"] == BASELINE_SCHEMA_VERSION
        assert main(["lint", str(DIRTY), "--baseline", str(baseline_path)]) == 0
        assert "44 baselined" in capsys.readouterr().out

    def test_missing_path_exits_2(self, capsys):
        assert main(["lint", "no/such/dir"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_syntax_error_reported_as_rep000(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "broken.py").write_text("def broken(:\n")
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "REP000" in out
        assert "does not parse" in out


class TestSelfHosting:
    def test_src_tree_has_zero_non_baselined_violations(self, capsys, monkeypatch):
        """The linter gates its own codebase: ``repro lint src/`` is clean."""
        monkeypatch.chdir(REPO_ROOT)
        code = main(["lint", "src"])
        out = capsys.readouterr().out
        assert code == 0, f"replint found new violations in src/:\n{out}"
        assert "0 new violation(s)" in out
