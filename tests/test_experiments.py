"""Integration tests over the experiment modules.

Benchmarks assert the paper's quantitative shape on full-size runs;
these tests exercise the same code paths quickly (small samples) and
check structural invariants: tables well-formed, series consistent,
determinism given a seed.
"""

import pytest

from repro.core.results import ResultTable
from repro.experiments import (
    fig10_retransmissions,
    fig13_rtt_scatter,
    fig14_rtt_hops,
    fig15_rtt_distance,
    fig21_power_breakdown,
    fig22_energy_per_bit,
    fig23_energy_timeline,
    tab1_physical_info,
    tab4_energy_models,
)
from repro.experiments import testbed as make_testbed
from repro.experiments.fig22_energy_per_bit import TRANSFER_TIMES_S


class TestTestbed:
    def test_cached_per_seed(self):
        assert make_testbed(3) is make_testbed(3)
        assert make_testbed(3) is not make_testbed(4)

    def test_networks_share_environment(self):
        bed = make_testbed(3)
        assert bed.nr.environment is bed.lte.environment

    def test_anchor_network_is_subset(self):
        bed = make_testbed(3)
        anchor_pcis = {c.pci for c in bed.lte_anchors.cells}
        full_pcis = {c.pci for c in bed.lte.cells}
        assert anchor_pcis < full_pcis


class TestTab1:
    def test_structure_and_determinism(self):
        a = tab1_physical_info.run(seed=3, num_points=120)
        b = tab1_physical_info.run(seed=3, num_points=120)
        assert a.nr_rsrp.mean == b.nr_rsrp.mean
        table = a.table()
        assert isinstance(table, ResultTable)
        assert len(table.rows) == 3

    def test_bands_from_profiles(self):
        result = tab1_physical_info.run(seed=3, num_points=60)
        assert result.nr_band_mhz == (3500.0, 3600.0)
        assert result.lte_band_mhz == (1840.0, 1860.0)


class TestFig10:
    def test_rates_sum_to_bler(self):
        result = fig10_retransmissions.run(seed=3, transport_blocks=20_000)
        total = sum(result.nr.retransmission_rate(k) for k in range(1, 33))
        assert total == pytest.approx(result.nr.block_error_rate, abs=1e-9)

    def test_5g_shallower_chains(self):
        result = fig10_retransmissions.run(seed=3, transport_blocks=20_000)
        assert result.nr.max_retransmissions <= result.lte.max_retransmissions


class TestRttExperiments:
    def test_fig13_pairs(self):
        result = fig13_rtt_scatter.run(seed=3, base_stations=1, probes_per_path=3)
        assert len(result.nr_rtts_ms) == len(result.lte_rtts_ms) == 20

    def test_fig14_hop_count(self):
        result = fig14_rtt_hops.run(seed=3, wired_hops=6, probes=5)
        assert len(result.nr_hop_rtts_ms) == 8  # RAN + core + 6 wired

    def test_fig15_sorted_by_distance(self):
        result = fig15_rtt_distance.run(seed=3, probes_per_server=3)
        assert list(result.distances_km) == sorted(result.distances_km)
        assert len(result.gaps_ms) == 20

    def test_fig15_5g_always_faster(self):
        result = fig15_rtt_distance.run(seed=3, probes_per_server=3)
        assert all(g > 0 for g in result.gaps_ms)


class TestEnergyExperiments:
    def test_fig21_full_matrix(self):
        result = fig21_power_breakdown.run()
        assert len(result.breakdowns) == 8  # 4 apps x 2 RATs

    def test_fig22_series_lengths(self):
        result = fig22_energy_per_bit.run()
        assert len(result.series(4)) == len(TRANSFER_TIMES_S)
        assert all(v > 0 for v in result.series(5))

    def test_fig23_landmarks_ordered(self):
        result = fig23_energy_timeline.run(seed=3)
        assert (
            result.transfer_start_s
            < result.transfer_end_s
            < result.lte_tail_end_s
            < result.nr_tail_end_s
        )

    def test_tab4_complete_grid(self):
        result = tab4_energy_models.run(seed=3)
        assert len(result.energy_j) == 12  # 4 models x 3 workloads
        assert all(v > 0 for v in result.energy_j.values())
        table = result.table()
        assert len(table.rows) == 4


class TestResultTableContract:
    def test_tables_render(self):
        # Every cheap experiment's table must render without raising.
        for result in (
            tab1_physical_info.run(seed=3, num_points=60).table(),
            fig22_energy_per_bit.run().table(),
            tab4_energy_models.run(seed=3).table(),
            fig21_power_breakdown.run().table(),
        ):
            text = result.render()
            assert text.count("\n") >= 2
