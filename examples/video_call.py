"""Panoramic video telephony QoE over 4G and 5G (Sec. 5.2).

Runs the 360TEL pipeline at every resolution, reporting received
throughput, freezes and the end-to-end frame delay breakdown.

Run:
    python examples/video_call.py
"""

import numpy as np

from repro.core import LTE_PROFILE, NR_PROFILE, ResultTable
from repro.apps import VIDEO_PROFILES, run_video_session
from repro.apps.video import (
    CAPTURE_SPLICE_RENDER_S,
    DECODE_S,
    ENCODE_S,
    RTMP_RELAY_S,
)

SCALE = 0.25


def main() -> None:
    table = ResultTable(
        "360TEL uplink sessions (15 s, dynamic scene)",
        ["resolution", "network", "received (Mbps)", "freezes", "mean frame delay (ms)"],
    )
    for resolution in VIDEO_PROFILES:
        for name, profile in (("4G", LTE_PROFILE), ("5G", NR_PROFILE)):
            session = run_video_session(
                profile, resolution, dynamic=True, duration_s=15.0, scale=SCALE, seed=7
            )
            delays = session.frame_delays_s()
            table.add_row(
                [
                    resolution,
                    name,
                    f"{session.mean_throughput_bps / SCALE / 1e6:.1f}",
                    session.freeze_count(),
                    f"{np.mean(delays) * 1000:.0f}" if delays else "n/a",
                ]
            )
    print(table.render())

    processing_ms = (ENCODE_S + DECODE_S + CAPTURE_SPLICE_RENDER_S + RTMP_RELAY_S) * 1000
    print(
        f"\nPipeline constants: encode {ENCODE_S * 1000:.0f} ms, "
        f"decode {DECODE_S * 1000:.0f} ms, capture/splice/render "
        f"{CAPTURE_SPLICE_RENDER_S * 1000:.0f} ms, RTMP relay {RTMP_RELAY_S * 1000:.0f} ms"
        f" -> {processing_ms:.0f} ms of device-side latency per frame."
    )
    print(
        "Even with 5G's bandwidth, processing dominates the ~950 ms frame"
        " delay by ~10x over transmission — the paper's Fig. 20 takeaway."
    )


if __name__ == "__main__":
    main()
