"""5G power management: what does each strategy cost? (Sec. 6)

Replays web, video and file traffic through the four radio power models
and prints the energy bill, then shows the Fig. 23 tail effect on a
pwrStrip-style trace.

Run:
    python examples/energy_planner.py
"""

from repro.core import ResultTable
from repro.core.rng import default_rng
from repro.energy import (
    FILE_CAPACITIES,
    MODEL_RUNNERS,
    VIDEO_CAPACITIES,
    WEB_CAPACITIES,
    file_transfer_trace,
    sample_timeline,
    simulate_nr_nsa,
    video_telephony_trace,
    web_browsing_trace,
)
from repro.energy.power_model import SYSTEM_POWER_W


def energy_bill() -> None:
    workloads = {
        "Web": (web_browsing_trace(rng=default_rng(7)), WEB_CAPACITIES),
        "Video": (video_telephony_trace(), VIDEO_CAPACITIES),
        "File": (file_transfer_trace(), FILE_CAPACITIES),
    }
    table = ResultTable(
        "Energy bill per power-management model (J, paper Tab. 4)",
        ["model"] + list(workloads),
    )
    for model, runner in MODEL_RUNNERS.items():
        row = [model]
        for trace, capacities in workloads.values():
            result = runner(trace, capacities)
            row.append(f"{result.total_energy_j + SYSTEM_POWER_W * result.end_s:.1f}")
        table.add_row(row)
    print(table.render())


def tail_trace() -> None:
    print("\n5G NSA power trace for 3 web loads (100 ms pwrStrip samples):")
    trace = web_browsing_trace(num_pages=3, think_time_s=3.0, rng=default_rng(7))
    result = simulate_nr_nsa(trace, WEB_CAPACITIES)
    samples = sample_timeline(result)
    max_power = max(s.power_w for s in samples)
    step = max(1, len(samples) // 60)
    for sample in samples[::step]:
        bar = "#" * int(40 * sample.power_w / max_power)
        print(f"  t={sample.time_s:6.1f}s  {sample.power_w:5.2f} W  {bar}")
    print(
        "\nNote the long tail after the last load: the NSA radio needs ~20 s"
        " to reach RRC_IDLE (double the 4G tail) because releasing NR rolls"
        " back through an extra LTE tail."
    )


def main() -> None:
    energy_bill()
    tail_trace()


if __name__ == "__main__":
    main()
