"""Build and publish a measurement dataset, like the paper's GitHub release.

Runs a compact measurement campaign (coverage survey, KPI drive test with
hand-offs, a TCP/UDP session, an energy timeline) and writes everything as
CSV/JSON with a manifest.

Run:
    python examples/build_dataset.py [output_dir]
"""

import sys

from repro.analysis.drive_test import DriveTester
from repro.analysis.release import DatasetRelease
from repro.core import NR_PROFILE
from repro.energy import WEB_CAPACITIES, simulate_nr_nsa, web_browsing_trace
from repro.experiments import testbed
from repro.mobility import RouteWalker
from repro.net import PathConfig
from repro.radio.coverage import road_locations, survey_at_locations
from repro.transport import run_tcp, run_udp


def main(output_dir: str = "dataset") -> None:
    bed = testbed(seed=7)
    release = DatasetRelease("operational_5g_repro")

    print("1/4 coverage survey...")
    locations = road_locations(bed.campus, 400, bed.rng_factory.stream("release"))
    release.add_coverage_survey("campus_5g", survey_at_locations(bed.nr, locations))
    release.add_coverage_survey("campus_4g", survey_at_locations(bed.lte, locations))

    print("2/4 KPI drive test (3 min walk)...")
    walker = RouteWalker(bed.campus, bed.rng_factory.stream("release-walk"))
    tester = DriveTester(bed.nr, bed.lte, walker, bed.rng_factory.stream("release-ho"))
    release.add_drive_test("walk1", tester.run(duration_s=180.0))

    print("3/4 transport sessions...")
    config = PathConfig(profile=NR_PROFILE, scale=0.05)
    capacity = config.access_rate_bps() * config.scale
    release.add_tcp_run("5g_cubic", run_tcp(config, "cubic", duration_s=15.0, seed=7,
                                            baseline_bps=capacity))
    release.add_udp_run("5g_halfload", run_udp(config, capacity * 0.5, duration_s=10.0, seed=7))

    print("4/4 energy timeline...")
    release.add_energy_timeline("web_nsa", simulate_nr_nsa(
        web_browsing_trace(rng=bed.rng_factory.stream("web")), WEB_CAPACITIES
    ))

    root = release.write(output_dir)
    print(f"\nDataset written to {root}/")
    for path in sorted(root.iterdir()):
        print(f"  {path.name:35s} {path.stat().st_size:>9} bytes")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "dataset")
