"""Hand-off deep dive: walk the campus and dissect NSA mobility (Sec. 3.4).

Renders the campus RSRP heatmap, runs a hand-off campaign, plots the
latency CDFs per hand-off kind, and compares against the projected SA
architecture — all in the terminal.

Run:
    python examples/handoff_explorer.py [walk_minutes]
"""

import sys
from collections import Counter

import numpy as np

from repro.analysis.plots import bar_chart, cdf_plot, heatmap
from repro.experiments import testbed
from repro.mobility import (
    HandoffEngine,
    HandoffKind,
    RouteWalker,
    rsrq_gain_cdf_fraction,
    sa_handoff_mean_latency_s,
)
from repro.radio.coverage import road_locations, survey_at_locations


def coverage_map(bed) -> None:
    print("Campus 5G RSRP map (paper Fig. 2a; darker = stronger):\n")
    locations = road_locations(bed.campus, 1500, bed.rng_factory.stream("map"))
    points = survey_at_locations(bed.nr, locations)
    samples = [(p.location.x, p.location.y, p.rsrp_dbm) for p in points]
    print(heatmap(samples, bed.campus.width_m, bed.campus.height_m, cols=46, rows=20))


def handoff_campaign(bed, minutes: float):
    print(f"\nWalking the campus for {minutes:.0f} minutes collecting hand-offs...")
    walker = RouteWalker(bed.campus, bed.rng_factory.stream("hx-walk"), speed_kmh=6.0)
    engine = HandoffEngine(bed.nr, bed.lte, bed.rng_factory.stream("hx-ho"),
                           measurement_noise_db=2.5)
    campaign = engine.run(walker.trajectory(minutes * 60.0, dt_s=0.108))
    counts = Counter(e.kind for e in campaign.events)
    print(f"collected {len(campaign.events)} hand-offs: {dict(counts)}")
    return campaign


def latency_cdfs(campaign) -> None:
    series = {}
    for kind in HandoffKind.ALL:
        events = campaign.events_of_kind(kind)
        if len(events) >= 3:
            series[kind] = [e.latency_s * 1000 for e in events]
    if series:
        print()
        print(cdf_plot(series, title="Hand-off latency CDFs (paper Fig. 6)", unit="ms"))
    if campaign.events:
        frac = rsrq_gain_cdf_fraction(campaign.events)
        print(f"\nHand-offs gaining >3 dB RSRQ: {frac:.0%} (paper: ~75%)")


def sa_comparison(campaign) -> None:
    nr_events = campaign.events_of_kind(HandoffKind.NR_TO_NR)
    if not nr_events:
        return
    nsa_ms = float(np.mean([e.latency_s for e in nr_events])) * 1000
    print()
    print(
        bar_chart(
            {
                "NSA 5G-5G (measured)": nsa_ms,
                "SA 5G-5G (projected)": sa_handoff_mean_latency_s() * 1000,
            },
            title="NSA vs SA hand-off latency",
            unit="ms",
        )
    )
    print(
        "\nThe NSA detour (release NR -> 4G anchor hand-off -> re-add NR)"
        " costs ~3.6x; SA's direct Xn hand-off erases it."
    )


def main(minutes: float = 15.0) -> None:
    bed = testbed(seed=7)
    coverage_map(bed)
    campaign = handoff_campaign(bed, minutes)
    latency_cdfs(campaign)
    sa_comparison(campaign)


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 15.0)
