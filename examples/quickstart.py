"""Quickstart: tour the toolkit in under a minute.

Builds the campus testbed, samples the radio layer at a few spots, runs
a short TCP-vs-UDP measurement on both networks, and prints a compact
report — a miniature version of the paper's measurement campaign.

Run:
    python examples/quickstart.py
"""

from repro.core import LTE_PROFILE, NR_PROFILE, ResultTable
from repro.experiments import testbed
from repro.geometry import Point
from repro.net import PathConfig
from repro.transport import run_tcp, run_udp_baseline


def radio_snapshot() -> None:
    """Sample both networks at a few campus locations."""
    bed = testbed(seed=7)
    spots = {
        "near gNB-C": Point(260.0, 480.0),
        "mid campus": Point(140.0, 700.0),
        "SE corner": Point(470.0, 40.0),
    }
    table = ResultTable(
        "Radio snapshot", ["location", "5G RSRP", "5G rate (Mbps)", "4G RSRP", "4G rate (Mbps)"]
    )
    for name, spot in spots.items():
        nr = bed.nr.sample_at(spot)
        lte = bed.lte.sample_at(spot)
        table.add_row(
            [
                name,
                f"{nr.rsrp_dbm:.0f} dBm",
                f"{bed.nr.bit_rate_at(spot) / 1e6:.0f}",
                f"{lte.rsrp_dbm:.0f} dBm",
                f"{bed.lte.bit_rate_at(spot) / 1e6:.0f}",
            ]
        )
    print(table.render())


def transport_snapshot() -> None:
    """A 20-second iperf-style comparison on both networks."""
    table = ResultTable(
        "Transport snapshot (20 s flows, scaled simulation)",
        ["network", "UDP baseline (Mbps)", "cubic util", "bbr util"],
    )
    for name, profile in (("4G", LTE_PROFILE), ("5G", NR_PROFILE)):
        config = PathConfig(profile=profile, scale=0.05)
        baseline = run_udp_baseline(config, duration_s=10.0, seed=7)
        cubic = run_tcp(config, "cubic", duration_s=20.0, seed=7, baseline_bps=baseline)
        bbr = run_tcp(config, "bbr", duration_s=20.0, seed=7, baseline_bps=baseline)
        table.add_row(
            [
                name,
                f"{baseline / 0.05 / 1e6:.0f}",
                f"{cubic.utilization:.0%}",
                f"{bbr.utilization:.0%}",
            ]
        )
    print(table.render())
    print(
        "\nThe 5G anomaly in one line: cubic leaves most of the 5G pipe idle"
        " while BBR fills it — the paper's Fig. 7."
    )


def main() -> None:
    radio_snapshot()
    print()
    transport_snapshot()


if __name__ == "__main__":
    main()
