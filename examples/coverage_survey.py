"""Coverage survey: walk the campus and map both networks (Sec. 3).

Reproduces the paper's blanket road survey: RSRP distributions, coverage
holes, the single-cell service radius and the indoor/outdoor gap.

Run:
    python examples/coverage_survey.py [num_points]
"""

import sys

from repro.core import ResultTable, percent, summarize
from repro.experiments import testbed
from repro.radio import coverage_radius_m, indoor_outdoor_gap
from repro.radio.coverage import (
    coverage_hole_fraction,
    road_locations,
    rsrp_distribution,
    survey_at_locations,
)


def main(num_points: int = 800) -> None:
    bed = testbed(seed=7)
    locations = road_locations(bed.campus, num_points, bed.rng_factory.stream("example"))

    table = ResultTable(
        f"Blanket survey over {num_points} road locations",
        ["metric", "4G", "5G"],
    )
    nr_points = survey_at_locations(bed.nr, locations)
    lte_points = survey_at_locations(bed.lte, locations)
    table.add_row(
        [
            "RSRP mean ± std (dBm)",
            str(summarize(p.rsrp_dbm for p in lte_points)),
            str(summarize(p.rsrp_dbm for p in nr_points)),
        ]
    )
    table.add_row(
        [
            "coverage holes (< -105 dBm)",
            percent(coverage_hole_fraction(lte_points)),
            percent(coverage_hole_fraction(nr_points)),
        ]
    )
    table.add_row(
        [
            "LoS service radius (m)",
            f"{coverage_radius_m(bed.lte, 200):.0f}",
            f"{coverage_radius_m(bed.nr, 72):.0f}",
        ]
    )
    print(table.render())

    print("\nRSRP histogram (5G):")
    for (lo, hi), count, frac in reversed(rsrp_distribution(nr_points)):
        bar = "#" * int(frac * 60)
        print(f"  [{lo:5.0f}, {hi:5.0f})  {percent(frac):>7s}  {bar}")

    gap = indoor_outdoor_gap(bed.nr, bed.campus, 72, 40, bed.rng_factory.stream("io"))
    print(
        f"\nIndoor/outdoor near cell 72: outdoor {gap.mean_outdoor_bps / 1e6:.0f} Mbps"
        f" -> indoor {gap.mean_indoor_bps / 1e6:.0f} Mbps"
        f" ({percent(gap.drop_fraction)} drop; paper: 50.59%)"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 800)
