"""The 5G TCP anomaly, end to end (Sec. 4).

Runs every congestion-control algorithm over the simulated 5G path,
prints utilization against the UDP baseline, then digs into the root
cause: the loss-vs-load curve and the bursty loss pattern of the
under-buffered wireline bottleneck.

Run:
    python examples/tcp_anomaly.py
"""

from repro.core import NR_PROFILE, ResultTable, percent
from repro.net import PathConfig
from repro.transport import CC_ALGORITHMS, loss_runs, run_tcp, run_udp, run_udp_baseline

SCALE = 0.05


def utilization_sweep(config: PathConfig, baseline: float) -> None:
    table = ResultTable(
        "TCP over 5G: bandwidth utilization (paper Fig. 7)",
        ["algorithm", "throughput (Mbps)", "utilization", "retransmissions"],
    )
    for algorithm in sorted(CC_ALGORITHMS):
        result = run_tcp(config, algorithm, duration_s=30.0, seed=7, baseline_bps=baseline)
        table.add_row(
            [
                algorithm,
                f"{result.throughput_bps / SCALE / 1e6:.0f}",
                percent(result.utilization),
                result.retransmissions,
            ]
        )
    print(table.render())


def loss_diagnosis(config: PathConfig, baseline: float) -> None:
    print("\nRoot cause 1 — loss grows with load (paper Fig. 9):")
    for fraction in (0.25, 0.5, 1.0):
        result = run_udp(config, baseline * fraction, duration_s=10.0, seed=7)
        print(f"  offered {fraction:>4.0%} of baseline -> loss {percent(result.loss_rate)}")

    print("\nRoot cause 2 — losses are bursty (paper Fig. 11):")
    result = run_udp(config, baseline * 0.8, duration_s=10.0, seed=7)
    runs = loss_runs(list(result.lost_seqs))
    if runs:
        mean_run = sum(runs) / len(runs)
        print(
            f"  {len(result.lost_seqs)} losses in {len(runs)} runs; "
            f"mean run length {mean_run:.1f} packets "
            f"(i.i.d. loss would give ~1.1) -> intermittent buffer overflow"
        )


def main() -> None:
    config = PathConfig(profile=NR_PROFILE, scale=SCALE)
    baseline = run_udp_baseline(config, duration_s=10.0, seed=7)
    print(f"5G UDP baseline: {baseline / SCALE / 1e6:.0f} Mbps (paper: 880)\n")
    utilization_sweep(config, baseline)
    loss_diagnosis(config, baseline)
    print(
        "\nTakeaway: the wireline buffers, sized for 4G-era flows, overflow in"
        " bursts under 5G load; only capacity-probing BBR survives."
    )


if __name__ == "__main__":
    main()
