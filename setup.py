"""Legacy setuptools shim.

The execution environment has no network access and no ``wheel`` package, so
pip's PEP 660 editable path cannot build; this shim lets ``pip install -e .``
fall back to the classic ``setup.py develop`` route.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
